"""Schema-aware static analysis of SQL predictions.

The :class:`SqlAnalyzer` walks the :mod:`repro.sql` AST of one statement
against a :class:`~repro.schema.model.DatabaseSchema` and emits
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  The rule
catalog (severities follow the policy in
:mod:`repro.analysis.diagnostics`):

====================================  ========  ===========================
rule                                  severity  fires when
====================================  ========  ===========================
``safety.non-select``                 error     statement kind is not a
                                                read-only SELECT
``safety.multiple-statements``        error     more than one statement
``syntax.parse-error``                error     text does not parse in the
                                                supported SQL subset
``schema.unknown-table``              error     FROM references a table
                                                absent from the schema
``schema.unknown-column``             error     column absent from every
                                                table in scope
``schema.ambiguous-column``           error     unqualified column matches
                                                several tables in scope
``schema.unknown-qualifier``          error     ``alias.column`` qualifier
                                                is not bound (dangling
                                                alias)
``join.cartesian-product``            warning   a FROM source is linked to
                                                the others by no equality
                                                predicate
``join.predicate-off-fk``             warning   tables share a foreign key
                                                but the join predicate
                                                uses different columns
``join.no-fk-path``                   info      joined tables share no
                                                foreign key at all
``agg.aggregate-in-where``            error     aggregate call in WHERE
``agg.ungrouped-column``              warning   bare column projected next
                                                to GROUP BY
``agg.having-without-group``          error/    HAVING without GROUP BY —
                                      warning   error on non-aggregate
                                                queries (SQLite rejects
                                                those), warning otherwise
``type.mismatch``                     warning   comparison literal's shape
                                                contradicts the column
                                                type from the schema
``nest.scalar-subquery-columns``      error     scalar/IN subquery returns
                                                more than one column
``nest.setop-arity``                  error     set-operation arms project
                                                different column counts
``sem:always-empty``                  warning   WHERE/HAVING can never be
                                                TRUE (contradictory bounds,
                                                ``x = NULL``, out-of-domain
                                                literal, …)
``sem:tautology``                     warning   OR branches cover every
                                                (non-NULL) value
``sem:redundant-predicate``           warning   a conjunct is implied by a
                                                sibling conjunct
====================================  ========  ===========================

The ``sem:*`` rules come from the satisfiability pass in
:mod:`repro.analysis.semantics` (interval/domain reasoning over typed
columns after canonicalization).  They are warnings by construction:
under three-valued logic a "tautology" still excludes NULLs, and an
always-empty query is valid SQL that simply returns nothing.

Scope resolution mirrors SQLite: unqualified columns resolve innermost
scope first (correlated subqueries may reach outer scopes), derived
tables in FROM see no outer scope, and SELECT-item aliases are valid
column references everywhere in the same core (SQLite accepts them even
in WHERE).  Whenever a scope contains an unresolvable source (unknown
table, ``SELECT *`` derived table) identifier checks inside it degrade
to best-effort rather than risk a false fatal.

One deliberate policy choice: text that does not parse in the supported
Spider SQL subset is *fatal* even though SQLite's grammar is wider.
Everything else in the harness (exact match, skeleton extraction,
normalisation) already requires parseability, so an unparseable
prediction is scored wrong regardless — skipping its execution loses
nothing and saves the round-trip.
"""

from __future__ import annotations

import difflib
import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..errors import SQLSyntaxError
from ..schema.model import Column, DatabaseSchema, Table
from ..sql.ast_nodes import (
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    LikeCondition,
    Literal,
    Query,
    SelectCore,
    TableRef,
    TableSource,
    iter_conditions,
)
from ..sql.dialect import DialectProfile, get_dialect, reference_dialect
from ..sql.parser import parse
from ..sql.tokens import AGGREGATES, TokenType, tokenize
from ..sql.transpile import normalize_to_reference
from .diagnostics import AnalysisResult, Diagnostic, sort_diagnostics
from .safety import classify_statement, split_statements
from .semantics import condition_findings

#: Version stamp folded into analysis cache keys — bump when rules change
#: so stale cached verdicts are never replayed.
ANALYZER_VERSION = "3"

_NUMERIC_RE = re.compile(r"-?\d+(\.\d+)?")


class _Binding:
    """One FROM-clause source visible in a scope."""

    __slots__ = ("name", "table", "columns", "table_name")

    def __init__(
        self,
        name: str,
        table: Optional[Table],
        columns: Optional[FrozenSet[str]],
        table_name: str,
    ) -> None:
        self.name = name            #: binding name (alias or table), lower
        self.table = table          #: resolved schema table, if any
        self.columns = columns      #: known column names (lower); None = opaque
        self.table_name = table_name  #: schema table name ("" for subqueries)


class _Scope:
    """Name-resolution scope of one SELECT core."""

    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.bindings: List[_Binding] = []
        self.select_aliases: FrozenSet[str] = frozenset()

    def binding(self, name: str) -> Optional[_Binding]:
        lowered = name.lower()
        for bound in self.bindings:
            if bound.name == lowered:
                return bound
        if self.parent is not None:
            return self.parent.binding(name)
        return None

    def has_opaque(self) -> bool:
        return any(b.columns is None for b in self.bindings)

    def alias_visible(self, name: str) -> bool:
        """SELECT-item aliases along the scope chain (SQLite resolves
        them in every clause of the owning core, WHERE included)."""
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.select_aliases:
                return True
            scope = scope.parent
        return False

    def visible_columns(self) -> List[str]:
        """Every resolvable column name in this scope chain (for hints)."""
        names: List[str] = []
        scope: Optional[_Scope] = self
        while scope is not None:
            for bound in scope.bindings:
                if bound.table is not None:
                    names.extend(c.name for c in bound.table.columns)
                elif bound.columns is not None:
                    names.extend(sorted(bound.columns))
            scope = scope.parent
        return names


class SqlAnalyzer:
    """Static analyzer for one database schema (stateless, reusable).

    Rules are parameterized by dialect profile: on profiles where
    double-quoted text denotes an identifier (Postgres, DuckDB, T-SQL)
    a double-quoted *string literal* is a fatal defect — the engine
    would resolve it as a column — while on the reference dialect the
    Spider convention applies and no diagnostic fires.  Non-reference
    SQL is normalized to the reference grammar before the structural
    walks, so spans of structural diagnostics refer to the normalized
    text.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        dialect: Union[str, DialectProfile, None] = None,
    ):
        self.schema = schema
        if dialect is None:
            self.profile = reference_dialect()
        elif isinstance(dialect, DialectProfile):
            self.profile = dialect
        else:
            self.profile = get_dialect(dialect)
        #: Known identifiers (lower-cased) — a double-quoted token naming
        #: one of these is a legitimate quoted identifier, not a literal.
        self._known_identifiers = frozenset(
            name.lower()
            for table in schema.tables
            for name in ([table.name] + [c.name for c in table.columns])
        )

    # -- dialect rules ---------------------------------------------------------

    def _dialect_diagnostics(self, sql: str) -> List[Diagnostic]:
        """Rules that inspect the raw dialect text before normalization."""
        if self.profile.double_quote_means != "identifier":
            return []
        try:
            tokens = tokenize(sql)
        except SQLSyntaxError:
            return []  # the parse step reports the syntax error
        out: List[Diagnostic] = []
        for token in tokens:
            if token.type is not TokenType.STRING:
                continue
            if token.position >= len(sql) or sql[token.position] != '"':
                continue
            if token.value.lower() in self._known_identifiers:
                continue  # valid quoted identifier on this dialect
            fix = "'" + token.value.replace("'", "''") + "'"
            out.append(Diagnostic(
                rule="dialect.double-quoted-literal",
                severity="error",
                message=(
                    f'double-quoted "{token.value}" is an identifier on '
                    f"{self.profile.name}, not a string literal"
                ),
                span=(token.position, token.position + len(token.value) + 2),
                fix=fix,
            ))
        return out

    # -- entry point ---------------------------------------------------------

    def analyze(self, sql: str) -> AnalysisResult:
        """Analyze one statement; never raises on bad input."""
        diagnostics: List[Diagnostic] = []
        text = sql.strip()
        statements = split_statements(text)
        kind = classify_statement(statements[0] if statements else text)

        if len(statements) > 1:
            diagnostics.append(Diagnostic(
                rule="safety.multiple-statements",
                severity="error",
                message=(
                    f"{len(statements)} statements in one submission; "
                    "SQLite executes exactly one"
                ),
                fix=statements[0],
            ))
        if kind != "select":
            diagnostics.append(Diagnostic(
                rule="safety.non-select",
                severity="error",
                message=(
                    "empty statement" if kind == "empty" else
                    f"statement kind is {kind!r}; only read-only SELECT "
                    "statements are executed"
                ),
            ))
            return AnalysisResult(
                sql=sql, statement_kind=kind,
                diagnostics=sort_diagnostics(diagnostics),
            )

        first = statements[0] if statements else text
        diagnostics.extend(self._dialect_diagnostics(first))
        if not self.profile.is_reference:
            first = normalize_to_reference(first, self.profile)
        try:
            query = parse(first)
        except SQLSyntaxError as exc:
            diagnostics.append(Diagnostic(
                rule="syntax.parse-error",
                severity="error",
                message=str(exc.args[0]) if exc.args else "syntax error",
            ))
            return AnalysisResult(
                sql=sql, statement_kind=kind,
                diagnostics=sort_diagnostics(diagnostics),
            )

        self._check_query(query, None, first, diagnostics)
        return AnalysisResult(
            sql=sql, statement_kind=kind,
            diagnostics=sort_diagnostics(diagnostics),
        )

    # -- query / core walks --------------------------------------------------

    def _check_query(
        self,
        query: Query,
        parent: Optional[_Scope],
        sql: str,
        diags: List[Diagnostic],
    ) -> Optional[int]:
        """Check one query (all set-op arms); returns its projection arity
        when determinable, else ``None``."""
        arities: List[Optional[int]] = []
        for _, core in query.flatten_set_ops():
            scope = self._check_core(core, parent, sql, diags)
            arities.append(self._core_arity(core, scope))
        known = [a for a in arities if a is not None]
        if known and any(a != known[0] for a in known[1:]):
            diags.append(Diagnostic(
                rule="nest.setop-arity",
                severity="error",
                message=(
                    "set-operation arms project different column counts: "
                    + ", ".join(str(a) if a is not None else "?"
                                for a in arities)
                ),
                span=self._span(sql, query.set_op or "UNION"),
            ))
        return arities[0]

    def _check_core(
        self,
        core: SelectCore,
        parent: Optional[_Scope],
        sql: str,
        diags: List[Diagnostic],
    ) -> _Scope:
        scope = self._build_scope(core.from_clause, parent, sql, diags)
        scope.select_aliases = frozenset(
            item.alias.lower() for item in core.items if item.alias
        )

        for item in core.items:
            self._check_expr(item.expr, scope, sql, diags)
        for expr in core.group_by:
            self._check_expr(expr, scope, sql, diags)
        for order in core.order_by:
            self._check_expr(order.expr, scope, sql, diags)
        self._check_condition(core.where, scope, sql, diags)
        self._check_condition(core.having, scope, sql, diags)
        if core.from_clause is not None:
            for join in core.from_clause.joins:
                self._check_condition(join.condition, scope, sql, diags)
                for column in join.using:
                    self._check_using_column(
                        column, join.source, core.from_clause, scope, sql,
                        diags,
                    )

        self._check_aggregation(core, scope, sql, diags)
        self._check_joins(core, scope, sql, diags)
        self._check_semantics(core, scope, sql, diags)
        return scope

    def _check_semantics(
        self,
        core: SelectCore,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        """Satisfiability findings over WHERE/HAVING (``sem:*`` rules)."""

        def resolver(ref: ColumnRef) -> Optional[Column]:
            return self._quiet_resolve(ref, scope)

        for clause, condition in (
            ("WHERE", core.where), ("HAVING", core.having),
        ):
            if condition is None:
                continue
            for finding in condition_findings(condition, resolver):
                diags.append(Diagnostic(
                    rule=f"sem:{finding.kind}",
                    severity="warning",
                    message=f"{clause} {finding.message}",
                    span=self._span(sql, finding.column),
                    fix=finding.fix,
                ))

    def _build_scope(
        self,
        clause: Optional[FromClause],
        parent: Optional[_Scope],
        sql: str,
        diags: List[Diagnostic],
    ) -> _Scope:
        scope = _Scope(parent)
        if clause is None:
            return scope
        for source in clause.sources():
            if isinstance(source, TableRef):
                if self.schema.has_table(source.name):
                    table = self.schema.table(source.name)
                    columns = frozenset(
                        c.name.lower() for c in table.columns
                    )
                    scope.bindings.append(_Binding(
                        source.binding(), table, columns, table.name,
                    ))
                else:
                    hint = self._closest(
                        source.name, self.schema.table_names()
                    )
                    diags.append(Diagnostic(
                        rule="schema.unknown-table",
                        severity="error",
                        message=(
                            f"table {source.name!r} is not in database "
                            f"{self.schema.db_id!r}"
                        ),
                        span=self._span(sql, source.name),
                        fix=hint,
                    ))
                    scope.bindings.append(_Binding(
                        source.binding(), None, None, "",
                    ))
            else:
                # Derived tables cannot see the outer scope (SQL scoping).
                self._check_query(source.query, None, sql, diags)
                scope.bindings.append(_Binding(
                    source.binding(), None,
                    self._subquery_columns(source.query), "",
                ))
        return scope

    @staticmethod
    def _subquery_columns(query: Query) -> Optional[FrozenSet[str]]:
        """Output column names of a derived table (None when ``*`` hides
        them)."""
        names: List[str] = []
        for item in query.core.items:
            if item.alias:
                names.append(item.alias.lower())
            elif isinstance(item.expr, ColumnRef):
                if item.expr.column == "*":
                    return None
                names.append(item.expr.column.lower())
            else:
                return None
        return frozenset(names)

    def _core_arity(
        self, core: SelectCore, scope: _Scope
    ) -> Optional[int]:
        """Projection width of one core; ``None`` when ``*`` is opaque."""
        total = 0
        for item in core.items:
            expr = item.expr
            if isinstance(expr, ColumnRef) and expr.column == "*":
                if expr.table:
                    bound = scope.binding(expr.table)
                    if bound is None or bound.columns is None:
                        return None
                    total += len(bound.columns)
                else:
                    if scope.has_opaque() or not scope.bindings:
                        return None
                    total += sum(
                        len(b.columns or ()) for b in scope.bindings
                    )
            else:
                total += 1
        return total

    # -- identifier resolution -----------------------------------------------

    def _check_expr(
        self,
        expr: Expr,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        if isinstance(expr, ColumnRef):
            self._resolve_column(expr, scope, sql, diags)
        elif isinstance(expr, FuncCall):
            self._check_expr(expr.arg, scope, sql, diags)
        elif isinstance(expr, BinaryExpr):
            self._check_expr(expr.left, scope, sql, diags)
            self._check_expr(expr.right, scope, sql, diags)
        elif isinstance(expr, CaseExpr):
            for condition, value in expr.whens:
                self._check_condition(condition, scope, sql, diags)
                self._check_expr(value, scope, sql, diags)
            if expr.else_ is not None:
                self._check_expr(expr.else_, scope, sql, diags)

    def _check_condition(
        self,
        condition: Optional[Condition],
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        for leaf in iter_conditions(condition):
            if isinstance(leaf, Comparison):
                self._check_expr(leaf.left, scope, sql, diags)
                self._check_operand(leaf.right, scope, sql, diags)
                self._check_comparison_types(leaf, scope, sql, diags)
            elif isinstance(leaf, InCondition):
                self._check_expr(leaf.expr, scope, sql, diags)
                if isinstance(leaf.values, Query):
                    self._check_scalar_subquery(
                        leaf.values, scope, sql, diags
                    )
                else:
                    self._check_literal_types(
                        leaf.expr, leaf.values, scope, sql, diags
                    )
            elif isinstance(leaf, LikeCondition):
                self._check_expr(leaf.expr, scope, sql, diags)
                self._check_like_types(leaf, scope, sql, diags)
            elif isinstance(leaf, BetweenCondition):
                self._check_expr(leaf.expr, scope, sql, diags)
                for side in (leaf.low, leaf.high):
                    self._check_operand(side, scope, sql, diags)
            elif isinstance(leaf, IsNullCondition):
                self._check_expr(leaf.expr, scope, sql, diags)
            elif isinstance(leaf, ExistsCondition):
                # EXISTS subqueries are correlated: current scope is parent.
                self._check_query(leaf.query, scope, sql, diags)

    def _check_operand(
        self,
        operand: Union[Expr, Query],
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        if isinstance(operand, Query):
            self._check_scalar_subquery(operand, scope, sql, diags)
        else:
            self._check_expr(operand, scope, sql, diags)

    def _check_scalar_subquery(
        self,
        query: Query,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        arity = self._check_query(query, scope, sql, diags)
        if arity is not None and arity != 1:
            diags.append(Diagnostic(
                rule="nest.scalar-subquery-columns",
                severity="error",
                message=(
                    f"subquery used as a scalar returns {arity} columns "
                    "- expected 1"
                ),
            ))

    def _resolve_column(
        self,
        ref: ColumnRef,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> Optional[Column]:
        if ref.column == "*":
            if ref.table and scope.binding(ref.table) is None:
                self._dangling_qualifier(ref, scope, sql, diags)
            return None

        if ref.table:
            bound = scope.binding(ref.table)
            if bound is None:
                self._dangling_qualifier(ref, scope, sql, diags)
                return None
            if bound.columns is None:
                return None
            if ref.column.lower() not in bound.columns:
                hint = self._closest(ref.column, sorted(bound.columns))
                diags.append(Diagnostic(
                    rule="schema.unknown-column",
                    severity="error",
                    message=(
                        f"column {ref.column!r} does not exist in "
                        f"{bound.table_name or ref.table!r}"
                    ),
                    span=self._span(sql, ref.column),
                    fix=hint,
                ))
                return None
            if bound.table is not None:
                return bound.table.column(ref.column)
            return None

        # Unqualified: innermost scope wins; SQLite errors on ambiguity.
        lowered = ref.column.lower()
        current: Optional[_Scope] = scope
        while current is not None:
            candidates = [
                b for b in current.bindings
                if b.columns is not None and lowered in b.columns
            ]
            if len(candidates) > 1:
                diags.append(Diagnostic(
                    rule="schema.ambiguous-column",
                    severity="error",
                    message=(
                        f"column {ref.column!r} is ambiguous: present in "
                        + " and ".join(
                            b.table_name or b.name for b in candidates
                        )
                    ),
                    span=self._span(sql, ref.column),
                    fix=f"{candidates[0].name}.{ref.column}",
                ))
                return None
            if len(candidates) == 1:
                bound = candidates[0]
                if bound.table is not None:
                    return bound.table.column(ref.column)
                return None
            if current.has_opaque():
                return None  # cannot prove the column unknown
            current = current.parent

        if scope.alias_visible(lowered):
            return None
        hint = self._closest(ref.column, scope.visible_columns())
        diags.append(Diagnostic(
            rule="schema.unknown-column",
            severity="error",
            message=(
                f"column {ref.column!r} does not exist in any table in "
                "scope"
            ),
            span=self._span(sql, ref.column),
            fix=hint,
        ))
        return None

    def _dangling_qualifier(
        self,
        ref: ColumnRef,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        names: List[str] = []
        current: Optional[_Scope] = scope
        while current is not None:
            names.extend(b.name for b in current.bindings)
            current = current.parent
        hint = self._closest(ref.table or "", names)
        diags.append(Diagnostic(
            rule="schema.unknown-qualifier",
            severity="error",
            message=(
                f"qualifier {ref.table!r} is not an alias or table in "
                "the FROM clause"
            ),
            span=self._span(sql, ref.table or ""),
            fix=hint,
        ))

    def _check_using_column(
        self,
        column: str,
        source: TableSource,
        clause: FromClause,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        """``USING (c)`` requires ``c`` on the joined source *and* on at
        least one earlier source."""
        lowered = column.lower()
        joined = scope.binding(source.binding())
        if joined is not None and joined.columns is not None \
                and lowered not in joined.columns:
            diags.append(Diagnostic(
                rule="schema.unknown-column",
                severity="error",
                message=(
                    f"USING column {column!r} does not exist in "
                    f"{joined.table_name or joined.name!r}"
                ),
                span=self._span(sql, column),
                fix=self._closest(column, sorted(joined.columns)),
            ))
        others = [
            scope.binding(s.binding()) for s in clause.sources()
            if s is not source
        ]
        concrete = [
            b for b in others if b is not None and b.columns is not None
        ]
        if len(concrete) == len(others) and concrete and not any(
            lowered in (b.columns or frozenset()) for b in concrete
        ):
            diags.append(Diagnostic(
                rule="schema.unknown-column",
                severity="error",
                message=(
                    f"USING column {column!r} does not exist on the other "
                    "side of the join"
                ),
                span=self._span(sql, column),
            ))

    # -- aggregation rules ---------------------------------------------------

    def _check_aggregation(
        self,
        core: SelectCore,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        for leaf in iter_conditions(core.where):
            for expr in self._leaf_exprs(leaf):
                name = self._aggregate_name(expr)
                if name is not None:
                    diags.append(Diagnostic(
                        rule="agg.aggregate-in-where",
                        severity="error",
                        message=(
                            f"misuse of aggregate function {name} in "
                            "WHERE; use HAVING"
                        ),
                        span=self._span(sql, name),
                    ))

        if core.having is not None and not core.group_by:
            aggregate_query = any(
                self._has_aggregate(item.expr) for item in core.items
            ) or any(
                any(self._has_aggregate(e) for e in self._leaf_exprs(leaf))
                for leaf in iter_conditions(core.having)
            )
            diags.append(Diagnostic(
                rule="agg.having-without-group",
                severity="warning" if aggregate_query else "error",
                message=(
                    "HAVING without GROUP BY"
                    + ("" if aggregate_query
                       else " on a non-aggregate query")
                ),
                span=self._span(sql, "HAVING"),
            ))

        # Bare columns projected next to aggregation: with GROUP BY, any
        # column outside the grouping keys; without one, any column at
        # all once an aggregate appears in the projection.  SQLite
        # executes both, picking an arbitrary row for the bare column.
        projects_aggregate = any(
            self._has_aggregate(item.expr) for item in core.items
        )
        if core.group_by or projects_aggregate:
            group_keys = set()
            for expr in core.group_by:
                if isinstance(expr, ColumnRef) and expr.column != "*":
                    group_keys.add(expr.column.lower())
            for item in core.items:
                expr = item.expr
                if not isinstance(expr, ColumnRef) or expr.column == "*":
                    continue
                if expr.column.lower() in group_keys:
                    continue
                if item.alias and item.alias.lower() in group_keys:
                    continue
                diags.append(Diagnostic(
                    rule="agg.ungrouped-column",
                    severity="warning",
                    message=(
                        f"column {expr.column!r} is projected but not in "
                        "GROUP BY (SQLite picks an arbitrary row)"
                    ),
                    span=self._span(sql, expr.column),
                ))

    def _aggregate_name(self, expr: Expr) -> Optional[str]:
        if isinstance(expr, FuncCall):
            if expr.name in AGGREGATES:
                return expr.name
            return self._aggregate_name(expr.arg)
        if isinstance(expr, BinaryExpr):
            return (self._aggregate_name(expr.left)
                    or self._aggregate_name(expr.right))
        return None

    def _has_aggregate(self, expr: Expr) -> bool:
        return self._aggregate_name(expr) is not None

    @staticmethod
    def _leaf_exprs(leaf: Condition) -> List[Expr]:
        exprs: List[Expr] = []
        for attr in ("left", "right", "expr", "low", "high"):
            value = getattr(leaf, attr, None)
            if value is not None and not isinstance(value, (Query, tuple)):
                exprs.append(value)
        return exprs

    # -- join sanity ---------------------------------------------------------

    def _check_joins(
        self,
        core: SelectCore,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        clause = core.from_clause
        if clause is None or len(clause.sources()) < 2:
            return
        names = [s.binding() for s in clause.sources()]

        edges: List[Tuple[str, str, ColumnRef, ColumnRef]] = []
        conditions: List[Optional[Condition]] = [core.where]
        conditions.extend(j.condition for j in clause.joins)
        for condition in conditions:
            for leaf in iter_conditions(condition):
                if not isinstance(leaf, Comparison) or leaf.op != "=":
                    continue
                left, right = leaf.left, leaf.right
                if not isinstance(left, ColumnRef) \
                        or not isinstance(right, ColumnRef):
                    continue
                left_bind = self._binding_of(left, scope)
                right_bind = self._binding_of(right, scope)
                if left_bind and right_bind and left_bind != right_bind:
                    edges.append((left_bind, right_bind, left, right))
        # USING(c) links the joined source to its predecessors; these
        # synthetic edges feed connectivity only, not the FK check (the
        # FK check wants an explicit left/right column pair).
        link_edges: List[Tuple[str, str]] = [(a, b) for a, b, _, _ in edges]
        for join in clause.joins:
            if join.using:
                for earlier in names:
                    if earlier != join.source.binding():
                        link_edges.append((earlier, join.source.binding()))
                        break

        # Connectivity: every source must link to the rest.
        parent: Dict[str, str] = {name: name for name in names}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        for a, b in link_edges:
            if a in parent and b in parent:
                parent[find(a)] = find(b)
        roots = {find(name) for name in names}
        if len(roots) > 1:
            diags.append(Diagnostic(
                rule="join.cartesian-product",
                severity="warning",
                message=(
                    "FROM sources are not all linked by join predicates "
                    f"({' / '.join(sorted(roots))}); this multiplies rows"
                ),
            ))

        # FK backing of explicit equality join predicates.
        for a, b, left, right in edges:
            bound_a, bound_b = scope.binding(a), scope.binding(b)
            if bound_a is None or bound_b is None:
                continue
            if bound_a.table is None or bound_b.table is None:
                continue
            table_a, table_b = bound_a.table_name, bound_b.table_name
            if table_a.lower() == table_b.lower():
                continue  # self-join: FK modelling does not apply
            fks = [
                fk for fk in self.schema.foreign_keys
                if {fk.table.lower(), fk.ref_table.lower()}
                == {table_a.lower(), table_b.lower()}
            ]
            pair = {
                (table_a.lower(), left.column.lower()),
                (table_b.lower(), right.column.lower()),
            }
            if not fks:
                diags.append(Diagnostic(
                    rule="join.no-fk-path",
                    severity="info",
                    message=(
                        f"no foreign key connects {table_a} and {table_b}"
                    ),
                ))
                continue
            backed = any(
                {(fk.table.lower(), fk.column.lower()),
                 (fk.ref_table.lower(), fk.ref_column.lower())} == pair
                for fk in fks
            )
            if not backed:
                fk = fks[0]
                diags.append(Diagnostic(
                    rule="join.predicate-off-fk",
                    severity="warning",
                    message=(
                        f"join predicate {left.key()} = {right.key()} is "
                        "not backed by a foreign key"
                    ),
                    fix=(
                        f"{fk.table}.{fk.column} = "
                        f"{fk.ref_table}.{fk.ref_column}"
                    ),
                ))

    def _binding_of(
        self, ref: ColumnRef, scope: _Scope
    ) -> Optional[str]:
        """Scope binding a column reference resolves to (best effort)."""
        if ref.column == "*":
            return None
        if ref.table:
            bound = scope.binding(ref.table)
            return bound.name if bound is not None else None
        lowered = ref.column.lower()
        candidates = [
            b for b in scope.bindings
            if b.columns is not None and lowered in b.columns
        ]
        if len(candidates) == 1:
            return candidates[0].name
        return None

    # -- type shape ----------------------------------------------------------

    def _check_comparison_types(
        self,
        leaf: Comparison,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        for column_side, literal_side in (
            (leaf.left, leaf.right), (leaf.right, leaf.left)
        ):
            if not isinstance(column_side, ColumnRef):
                continue
            if not isinstance(literal_side, Literal):
                continue
            column = self._quiet_resolve(column_side, scope)
            if column is None:
                return
            mismatch = self._literal_mismatch(column, literal_side)
            if mismatch:
                diags.append(Diagnostic(
                    rule="type.mismatch",
                    severity="warning",
                    message=(
                        f"comparing {column.ctype} column "
                        f"{column_side.key()} with {mismatch}"
                    ),
                    span=self._span(sql, column_side.column),
                ))
            return

    def _check_literal_types(
        self,
        expr: Expr,
        values: Sequence[Literal],
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        if not isinstance(expr, ColumnRef):
            return
        column = self._quiet_resolve(expr, scope)
        if column is None:
            return
        for literal in values:
            mismatch = self._literal_mismatch(column, literal)
            if mismatch:
                diags.append(Diagnostic(
                    rule="type.mismatch",
                    severity="warning",
                    message=(
                        f"IN list for {column.ctype} column {expr.key()} "
                        f"contains {mismatch}"
                    ),
                    span=self._span(sql, expr.column),
                ))
                return

    def _check_like_types(
        self,
        leaf: LikeCondition,
        scope: _Scope,
        sql: str,
        diags: List[Diagnostic],
    ) -> None:
        if not isinstance(leaf.expr, ColumnRef):
            return
        column = self._quiet_resolve(leaf.expr, scope)
        if column is not None and column.ctype == "number":
            diags.append(Diagnostic(
                rule="type.mismatch",
                severity="warning",
                message=(
                    f"LIKE pattern match on number column "
                    f"{leaf.expr.key()}"
                ),
                span=self._span(sql, leaf.expr.column),
            ))

    @staticmethod
    def _literal_mismatch(column: Column, literal: Literal) -> str:
        """Human description of a type-shape clash, or "" when fine."""
        if literal.kind == "number" and column.ctype == "text":
            return f"number literal {literal.value}"
        if (
            literal.kind == "string"
            and column.ctype == "number"
            and _NUMERIC_RE.fullmatch(literal.value.strip()) is None
        ):
            return f"non-numeric string {literal.value!r}"
        return ""

    def _quiet_resolve(
        self, ref: ColumnRef, scope: _Scope
    ) -> Optional[Column]:
        """Resolve a column without emitting diagnostics (type checks)."""
        scratch: List[Diagnostic] = []
        return self._resolve_column(ref, scope, "", scratch)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _span(sql: str, word: str) -> Tuple[int, int]:
        """Best-effort character span of an identifier/keyword in the
        SQL text ((0, 0) when it cannot be located)."""
        if not word or not sql:
            return (0, 0)
        match = re.search(
            rf"\b{re.escape(word)}\b", sql, flags=re.IGNORECASE
        )
        if match is None:
            return (0, 0)
        return (match.start(), match.end())

    @staticmethod
    def _closest(name: str, options: Sequence[str]) -> str:
        matches = difflib.get_close_matches(
            name.lower(), [o.lower() for o in options], n=1, cutoff=0.6
        )
        if not matches:
            return ""
        for option in options:
            if option.lower() == matches[0]:
                return option
        return matches[0]


def analyze(
    schema: DatabaseSchema,
    sql: str,
    dialect: Union[str, DialectProfile, None] = None,
) -> AnalysisResult:
    """One-shot convenience wrapper over :class:`SqlAnalyzer`."""
    return SqlAnalyzer(schema, dialect=dialect).analyze(sql)
