"""Deterministic repair pass for mechanical analyzer findings.

Three opt-in repairs (``--repair``), each conservative enough to never
change the meaning of an already-correct query:

``repair.trailing-junk``
    When the text does not parse, retry progressively shorter token
    prefixes and keep the longest one that parses — this drops trailing
    natural-language the extractor left behind ("... LIMIT 1  Hope this
    helps!") and dangling clause keywords from truncated generations.
``repair.case-fold``
    Rewrite table and column identifiers to their exact schema spelling
    (SQLite resolves case-insensitively, but downstream consumers — the
    linker vocabulary, exact-match normalisation, humans — prefer one
    spelling).
``repair.qualify-columns``
    In multi-source FROM clauses, qualify unqualified columns that
    resolve to exactly one source.  Single-source queries are left
    unqualified — adding a qualifier there is pure noise.

The pass is purely syntactic: it never invents identifiers, reorders
clauses or touches literals, so repairing is idempotent and safe to
cache.  Queries whose statement kind is not SELECT, or that contain
several statements, are returned untouched — the safety gate, not the
repairer, owns those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import SQLSyntaxError
from ..schema.model import DatabaseSchema
from ..sql.ast_nodes import (
    AndCondition,
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    Join,
    LikeCondition,
    Literal,
    NotCondition,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    SubqueryTable,
    TableRef,
)
from ..sql.parser import parse, try_parse
from ..sql.tokens import TokenType, tokenize
from ..sql.unparse import unparse
from .safety import classify_statement, split_statements

#: Repair rule ids in application order.
REPAIR_RULES = (
    "repair.trailing-junk",
    "repair.case-fold",
    "repair.qualify-columns",
)

#: Shortest prefix (in tokens) worth keeping: ``SELECT x FROM t``.
_MIN_TOKENS = 4


@dataclass(frozen=True)
class RepairResult:
    """Outcome of one repair attempt.

    Attributes:
        sql: the repaired SQL — identical to the input when nothing
            applied.
        applied: ids of the repair rules that changed the text, in
            application order.
    """

    sql: str
    applied: Tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def repair(schema: DatabaseSchema, sql: str) -> RepairResult:
    """Apply every mechanical repair that provably preserves intent."""
    text = sql.strip()
    statements = split_statements(text)
    if len(statements) != 1 or classify_statement(statements[0]) != "select":
        return RepairResult(sql=sql)
    base = statements[0]
    applied: List[str] = []

    query = try_parse(base)
    if query is None:
        trimmed = _strip_trailing_junk(base)
        if trimmed is None:
            return RepairResult(sql=sql)
        applied.append("repair.trailing-junk")
        base = trimmed
        query = parse(base)

    rewriter = _Rewriter(schema)
    rewritten = rewriter.rewrite_query(query, None)
    if rewriter.case_folded:
        applied.append("repair.case-fold")
    if rewriter.qualified:
        applied.append("repair.qualify-columns")

    if not applied:
        return RepairResult(sql=sql)
    return RepairResult(sql=unparse(rewritten), applied=tuple(applied))


def _strip_trailing_junk(sql: str) -> Optional[str]:
    """Longest token prefix of ``sql`` that parses, or ``None``."""
    try:
        tokens = tokenize(sql)
    except SQLSyntaxError as exc:
        # Lexing failed on a stray character ("!", "…"): cut right before
        # it and retry — the junk starts no later than that offset.
        position = getattr(exc, "position", None)
        if position:
            prefix = sql[:position].strip()
            if prefix and prefix != sql:
                if try_parse(prefix) is not None:
                    return prefix
                return _strip_trailing_junk(prefix)
        return None
    significant = [t for t in tokens if t.type is not TokenType.EOF]
    for cut in range(len(significant) - 1, _MIN_TOKENS - 1, -1):
        candidate = sql[: significant[cut].position].strip()
        if try_parse(candidate) is not None:
            return candidate
    return None


class _SourceInfo:
    """Spelling and membership info for one FROM source."""

    __slots__ = ("binding", "qualifier", "columns")

    def __init__(
        self,
        binding: str,
        qualifier: str,
        columns: Optional[Dict[str, str]],
    ) -> None:
        self.binding = binding      #: lower-cased binding name
        self.qualifier = qualifier  #: spelling to use when qualifying
        self.columns = columns      #: lower name -> schema spelling; None = opaque


class _RepairScope:
    def __init__(self, parent: Optional["_RepairScope"]) -> None:
        self.parent = parent
        self.sources: List[_SourceInfo] = []

    def lookup(self, qualifier: str) -> Optional[_SourceInfo]:
        lowered = qualifier.lower()
        for info in self.sources:
            if info.binding == lowered:
                return info
        if self.parent is not None:
            return self.parent.lookup(qualifier)
        return None


class _Rewriter:
    """Scope-aware AST rewriter for case-fold + qualify repairs."""

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self.case_folded = False
        self.qualified = False

    # -- query structure -----------------------------------------------------

    def rewrite_query(
        self, query: Query, parent: Optional[_RepairScope]
    ) -> Query:
        core = self._rewrite_core(query.core, parent)
        set_query = (
            self.rewrite_query(query.set_query, parent)
            if query.set_query is not None else None
        )
        return Query(core=core, set_op=query.set_op, set_query=set_query)

    def _rewrite_core(
        self, core: SelectCore, parent: Optional[_RepairScope]
    ) -> SelectCore:
        scope = _RepairScope(parent)
        from_clause = core.from_clause
        if from_clause is not None:
            from_clause = self._rewrite_from(from_clause, scope)

        items = tuple(
            SelectItem(
                expr=self._rewrite_expr(item.expr, scope),
                alias=item.alias,
            )
            for item in core.items
        )
        group_by = tuple(
            self._rewrite_expr(expr, scope) for expr in core.group_by
        )
        order_by = tuple(
            OrderItem(
                expr=self._rewrite_expr(order.expr, scope),
                direction=order.direction,
            )
            for order in core.order_by
        )
        where = self._rewrite_condition(core.where, scope)
        having = self._rewrite_condition(core.having, scope)
        return SelectCore(
            items=items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=core.limit,
            distinct=core.distinct,
        )

    def _rewrite_from(
        self, clause: FromClause, scope: _RepairScope
    ) -> FromClause:
        source = self._rewrite_source(clause.source, scope)
        joins = []
        for join in clause.joins:
            joins.append(Join(
                source=self._rewrite_source(join.source, scope),
                condition=None,  # rewritten below, once the scope is full
                kind=join.kind,
                using=join.using,
            ))
        # Join conditions may reference any source, so rewrite them only
        # after every binding is registered.
        joins = [
            Join(
                source=new.source,
                condition=self._rewrite_condition(old.condition, scope),
                kind=new.kind,
                using=new.using,
            )
            for new, old in zip(joins, clause.joins)
        ]
        return FromClause(source=source, joins=tuple(joins))

    def _rewrite_source(
        self,
        source: Union[TableRef, SubqueryTable],
        scope: _RepairScope,
    ) -> Union[TableRef, SubqueryTable]:
        if isinstance(source, TableRef):
            name = source.name
            columns: Optional[Dict[str, str]] = None
            if self.schema.has_table(name):
                table = self.schema.table(name)
                if table.name != name:
                    self.case_folded = True
                    name = table.name
                columns = {c.name.lower(): c.name for c in table.columns}
            qualifier = source.alias or name
            scope.sources.append(_SourceInfo(
                (source.alias or name).lower(), qualifier, columns,
            ))
            return TableRef(name=name, alias=source.alias)
        rewritten = self.rewrite_query(source.query, None)
        scope.sources.append(_SourceInfo(
            source.binding(), source.alias or "", None,
        ))
        return SubqueryTable(query=rewritten, alias=source.alias)

    # -- expressions ---------------------------------------------------------

    def _rewrite_expr(self, expr: Expr, scope: _RepairScope) -> Expr:
        if isinstance(expr, ColumnRef):
            return self._rewrite_column(expr, scope)
        if isinstance(expr, FuncCall):
            return FuncCall(
                name=expr.name,
                arg=self._rewrite_expr(expr.arg, scope),
                distinct=expr.distinct,
            )
        if isinstance(expr, BinaryExpr):
            return BinaryExpr(
                op=expr.op,
                left=self._rewrite_expr(expr.left, scope),
                right=self._rewrite_expr(expr.right, scope),
            )
        if isinstance(expr, CaseExpr):
            whens = tuple(
                (
                    self._rewrite_required(condition, scope),
                    self._rewrite_expr(value, scope),
                )
                for condition, value in expr.whens
            )
            else_ = (
                self._rewrite_expr(expr.else_, scope)
                if expr.else_ is not None else None
            )
            return CaseExpr(whens=whens, else_=else_)
        return expr  # literals

    def _rewrite_column(
        self, ref: ColumnRef, scope: _RepairScope
    ) -> ColumnRef:
        if ref.column == "*":
            return ref
        if ref.table:
            info = scope.lookup(ref.table)
            if info is None or info.columns is None:
                return ref
            spelled = info.columns.get(ref.column.lower())
            table = info.qualifier if info.qualifier else ref.table
            if spelled is None:
                spelled = ref.column
            if spelled != ref.column or table != ref.table:
                self.case_folded = True
                return ColumnRef(column=spelled, table=table)
            return ref

        lowered = ref.column.lower()
        current: Optional[_RepairScope] = scope
        while current is not None:
            if any(info.columns is None for info in current.sources):
                return ref  # opaque source: resolution is unreliable
            matches = [
                info for info in current.sources
                if info.columns is not None and lowered in info.columns
            ]
            if len(matches) > 1:
                return ref  # ambiguous: repairing would guess
            if len(matches) == 1:
                info = matches[0]
                assert info.columns is not None
                spelled = info.columns[lowered]
                if spelled != ref.column:
                    self.case_folded = True
                if len(current.sources) > 1:
                    self.qualified = True
                    return ColumnRef(column=spelled, table=info.qualifier)
                if spelled != ref.column:
                    return ColumnRef(column=spelled, table=None)
                return ref
            current = current.parent
        return ref

    # -- conditions ----------------------------------------------------------

    def _rewrite_condition(
        self, condition: Optional[Condition], scope: _RepairScope
    ) -> Optional[Condition]:
        if condition is None:
            return None
        return self._rewrite_required(condition, scope)

    def _rewrite_required(
        self, condition: Condition, scope: _RepairScope
    ) -> Condition:
        if isinstance(condition, AndCondition):
            return AndCondition(operands=tuple(
                self._rewrite_required(op, scope)
                for op in condition.operands
            ))
        if isinstance(condition, OrCondition):
            return OrCondition(operands=tuple(
                self._rewrite_required(op, scope)
                for op in condition.operands
            ))
        if isinstance(condition, NotCondition):
            return NotCondition(
                operand=self._rewrite_required(condition.operand, scope)
            )
        if isinstance(condition, Comparison):
            right: Union[Expr, Query]
            if isinstance(condition.right, Query):
                right = self.rewrite_query(condition.right, scope)
            else:
                right = self._rewrite_expr(condition.right, scope)
            return Comparison(
                op=condition.op,
                left=self._rewrite_expr(condition.left, scope),
                right=right,
            )
        if isinstance(condition, InCondition):
            values: Union[Tuple[Literal, ...], Query]
            if isinstance(condition.values, Query):
                values = self.rewrite_query(condition.values, scope)
            else:
                values = condition.values
            return InCondition(
                expr=self._rewrite_expr(condition.expr, scope),
                values=values,
                negated=condition.negated,
            )
        if isinstance(condition, LikeCondition):
            return LikeCondition(
                expr=self._rewrite_expr(condition.expr, scope),
                pattern=condition.pattern,
                negated=condition.negated,
            )
        if isinstance(condition, BetweenCondition):
            low: Union[Expr, Query]
            high: Union[Expr, Query]
            if isinstance(condition.low, Query):
                low = self.rewrite_query(condition.low, scope)
            else:
                low = self._rewrite_expr(condition.low, scope)
            if isinstance(condition.high, Query):
                high = self.rewrite_query(condition.high, scope)
            else:
                high = self._rewrite_expr(condition.high, scope)
            return BetweenCondition(
                expr=self._rewrite_expr(condition.expr, scope),
                low=low,
                high=high,
                negated=condition.negated,
            )
        if isinstance(condition, IsNullCondition):
            return IsNullCondition(
                expr=self._rewrite_expr(condition.expr, scope),
                negated=condition.negated,
            )
        if isinstance(condition, ExistsCondition):
            return ExistsCondition(
                query=self.rewrite_query(condition.query, scope),
                negated=condition.negated,
            )
        return condition
