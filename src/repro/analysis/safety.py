"""Execution safety gate: statement-kind classification.

The evaluation pipeline must only ever hand read-only SELECTs to SQLite.
This module classifies raw statement text *before* parsing (the parser
only understands the SELECT subset, so a rejected INSERT must be gated
here, not reported as a syntax error) and detects multi-statement input,
which ``sqlite3`` refuses outright ("You can only execute one statement
at a time").
"""

from __future__ import annotations

import re
from typing import List

#: Statement kinds the gate distinguishes.  Only ``"select"`` may reach
#: the execution backend.
STATEMENT_KINDS = ("select", "write", "ddl", "admin", "unknown", "empty")

_KIND_BY_KEYWORD = {
    "select": "select",
    "with": "select",      # CTEs are read-only wrappers around SELECT
    "values": "select",
    "insert": "write",
    "replace": "write",
    "update": "write",
    "delete": "write",
    "create": "ddl",
    "drop": "ddl",
    "alter": "ddl",
    "truncate": "ddl",
    "pragma": "admin",
    "attach": "admin",
    "detach": "admin",
    "vacuum": "admin",
    "analyze": "admin",
    "reindex": "admin",
    "begin": "admin",
    "commit": "admin",
    "rollback": "admin",
    "explain": "admin",
}

_LEADING_COMMENT_RE = re.compile(r"^(?:\s+|--[^\n]*\n?|/\*.*?\*/)+", re.DOTALL)
_FIRST_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")


def strip_leading_trivia(sql: str) -> str:
    """Drop leading whitespace and SQL comments."""
    match = _LEADING_COMMENT_RE.match(sql)
    return sql[match.end():] if match else sql


def classify_statement(sql: str) -> str:
    """Classify one statement's kind from its leading keyword.

    Returns one of :data:`STATEMENT_KINDS`; anything that does not start
    with a known keyword (prose, a truncated fragment) is ``"unknown"``
    — the gate treats unknown like non-SELECT and refuses to execute it,
    but the parser usually produces a sharper syntax diagnostic first.
    """
    body = strip_leading_trivia(sql)
    if not body.strip():
        return "empty"
    # A parenthesised query "(SELECT ...)" is still a select.
    while body.startswith("("):
        body = body[1:].lstrip()
    word = _FIRST_WORD_RE.match(body)
    if word is None:
        return "unknown"
    return _KIND_BY_KEYWORD.get(word.group().lower(), "unknown")


def split_statements(text: str) -> List[str]:
    """Split SQL text on top-level semicolons, respecting quotes.

    Semicolons inside ``'...'`` or ``"..."`` literals (with doubled-quote
    escapes) do not split.  Empty fragments are dropped; a lone trailing
    semicolon therefore yields one statement.
    """
    statements: List[str] = []
    current: List[str] = []
    quote = ""
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if quote:
            current.append(char)
            if char == quote:
                if index + 1 < length and text[index + 1] == quote:
                    current.append(quote)
                    index += 1
                else:
                    quote = ""
        elif char in "'\"":
            quote = char
            current.append(char)
        elif char == ";":
            statements.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    statements.append("".join(current))
    return [s.strip() for s in statements if s.strip()]
