"""Diagnostic taxonomy of the static analyzer.

A :class:`Diagnostic` is one finding of the analyzer: a stable rule id, a
severity, a best-effort character span in the analyzed SQL, a human
message and (when the fix is mechanical) a suggested replacement.  An
:class:`AnalysisResult` bundles every diagnostic for one statement with
the statement-kind classification of the safety gate.

Severity policy (mirrors what SQLite 3.40 actually enforces — an
``error`` means execution *will* fail, so the pipeline may skip the DB
round-trip; a ``warning`` executes but is a strong wrongness signal; an
``info`` is advisory):

========== =============================================================
severity   meaning
========== =============================================================
error      SQLite would reject the statement (unknown identifier,
           ambiguous column, aggregate misuse in WHERE, arity mismatch,
           non-SELECT statement, syntax error).  Fatal: the pipeline
           short-circuits execution.
warning    Executes, but is usually wrong (cartesian product, join
           predicate off the FK edge, ungrouped projection, type-shape
           mismatch).
info       Stylistic or contextual observations.
========== =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

#: Severities in decreasing order of badness.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

#: ``error_class`` prefix for fatal-lint short circuits, so report
#: tallies and trace grouping distinguish lint gates from engine faults.
LINT_ERROR_PREFIX = "lint"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes:
        rule: stable dotted rule id, e.g. ``"schema.unknown-column"``.
        severity: one of :data:`SEVERITIES`.
        message: human-readable explanation.
        span: best-effort ``(start, end)`` character offsets of the
            offending text in the analyzed SQL; ``(0, 0)`` when the
            finding has no localisable span.
        fix: suggested replacement text ("" when none is known).
    """

    rule: str
    severity: str
    message: str
    span: Tuple[int, int] = (0, 0)
    fix: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (the persisted per-record form)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "span": list(self.span),
            "fix": self.fix,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Diagnostic":
        span = payload.get("span") or (0, 0)
        start, end = int(span[0]), int(span[1])  # type: ignore[index]
        return cls(
            rule=str(payload.get("rule", "")),
            severity=str(payload.get("severity", "info")),
            message=str(payload.get("message", "")),
            span=(start, end),
            fix=str(payload.get("fix", "")),
        )

    def format(self) -> str:
        """One-line human rendering (the ``dail-sql lint`` output row)."""
        text = f"{self.severity}[{self.rule}] {self.message}"
        if self.fix:
            text += f" (fix: {self.fix})"
        return text


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the analyzer concluded about one statement.

    Attributes:
        sql: the exact text that was analyzed.
        statement_kind: the safety gate's classification — ``"select"``
            for read-only queries, otherwise ``"write"`` / ``"ddl"`` /
            ``"admin"`` / ``"unknown"`` / ``"empty"``.
        diagnostics: findings, ordered by severity then rule id.
    """

    sql: str
    statement_kind: str
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def fatal(self) -> bool:
        """True when execution would fail — the pipeline's skip signal."""
        return any(d.severity == "error" for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        """True when no diagnostic fired at all."""
        return not self.diagnostics

    def fatal_diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def error_class(self) -> str:
        """Structured class for records: ``lint:<first fatal rule>``."""
        for diagnostic in self.diagnostics:
            if diagnostic.severity == "error":
                return f"{LINT_ERROR_PREFIX}:{diagnostic.rule}"
        return ""

    def by_rule(self) -> Dict[str, int]:
        """Rule-id histogram (summary tables, metrics)."""
        out: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            out[diagnostic.rule] = out.get(diagnostic.rule, 0) + 1
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "sql": self.sql,
            "statement_kind": self.statement_kind,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "AnalysisResult":
        raw = payload.get("diagnostics") or []
        diagnostics = tuple(
            Diagnostic.from_dict(entry)  # type: ignore[arg-type]
            for entry in raw  # type: ignore[union-attr]
        )
        return cls(
            sql=str(payload.get("sql", "")),
            statement_kind=str(payload.get("statement_kind", "unknown")),
            diagnostics=diagnostics,
        )


def sort_diagnostics(diagnostics: List[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """Deterministic ordering: severity first, then rule id, then span."""
    rank = {severity: index for index, severity in enumerate(SEVERITIES)}
    return tuple(
        sorted(
            diagnostics,
            key=lambda d: (rank.get(d.severity, len(SEVERITIES)), d.rule,
                           d.span, d.message),
        )
    )
