"""Semantic reasoning over parsed SQL: equivalence and satisfiability.

Two instruments on top of :mod:`repro.sql.canonical`:

* :func:`equivalent` — a three-valued equivalence check between two
  queries.  ``EQUAL`` means the queries return results comparing equal
  under :func:`repro.db.execution.results_match` on **every** database
  instance of the schema; ``DISTINCT`` means some instance tells them
  apart; ``UNKNOWN`` is the honest default.  The verdict is symmetric
  by construction and ``EQUAL`` is transitive (it is witnessed by a
  shared canonical form or by both queries being provably empty).

* :func:`condition_findings` — a schema-aware satisfiability pass over
  a WHERE/HAVING tree.  Conjunctions are compiled into per-column
  domains (numeric intervals, pinned/excluded values, ``IN`` sets,
  NULL-ness) and interval reasoning surfaces contradictions
  (``always-empty``), complementary disjuncts (``tautology``), and
  implied conjuncts (``redundant-predicate``).  All reasoning is sound
  under three-valued logic: a "contradiction" means no row can make
  the condition evaluate to TRUE (FALSE *or* NULL both filter), and a
  comparison-based "tautology" is only claimed modulo NULL — which is
  why the analyzer reports these as warnings, never as fatal errors.

The satisfiability engine is deliberately partial: any predicate it
does not fully understand (subqueries, LIKE patterns, cross-column
arithmetic) blocks *positive* proofs but still participates in
contradiction detection through the constraints it does expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ..schema.model import Column, DatabaseSchema
from ..sql.ast_nodes import (
    AndCondition,
    ColumnRef,
    Comparison,
    Condition,
    FuncCall,
    InCondition,
    IsNullCondition,
    LikeCondition,
    Literal,
    NotCondition,
    OrCondition,
    Query,
    SelectCore,
    SubqueryTable,
    TableRef,
)
from ..sql.canonical import canonicalize, canonicalize_condition
from ..sql.parser import try_parse
from ..sql.tokens import AGGREGATES
from ..sql.unparse import condition_text

#: Equivalence verdicts.
EQUAL = "EQUAL"
DISTINCT = "DISTINCT"
UNKNOWN = "UNKNOWN"

#: Resolves a column reference to its schema column (``None`` when the
#: reference is ambiguous, unresolvable, or no schema is available).
Resolver = Callable[[ColumnRef], Optional[Column]]

#: Values the domain engine reasons about.
_Value = Union[int, float, str]


def _null_resolver(ref: ColumnRef) -> Optional[Column]:
    return None


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else str(value)


# ---------------------------------------------------------------------------
# Equivalence
# ---------------------------------------------------------------------------


def equivalent(
    a: Union[str, Query],
    b: Union[str, Query],
    schema: Optional[DatabaseSchema] = None,
) -> str:
    """Three-valued equivalence verdict for two queries.

    ``EQUAL`` and ``DISTINCT`` are proofs; ``UNKNOWN`` is everything
    else (including unparseable input).  Quantification is over all
    database instances of ``schema``, with result equality as defined
    by the execution comparator (multisets without ORDER BY).
    """
    if isinstance(a, str) and isinstance(b, str) and a.strip() == b.strip():
        return EQUAL
    qa = try_parse(a) if isinstance(a, str) else a
    qb = try_parse(b) if isinstance(b, str) else b
    if qa is None or qb is None:
        return UNKNOWN
    try:
        ca = canonicalize(qa, schema)
        cb = canonicalize(qb, schema)
    except Exception:  # defensive: a rewrite bug must not break scoring
        return UNKNOWN
    if ca == cb:
        return EQUAL

    resolver = _schema_resolver(schema)
    empty_a = _always_empty(ca, resolver)
    empty_b = _always_empty(cb, resolver)
    if empty_a and empty_b:
        # Both provably return zero rows on every instance.
        return EQUAL
    if empty_a and _provably_nonempty(cb, resolver):
        return DISTINCT
    if empty_b and _provably_nonempty(ca, resolver):
        return DISTINCT

    if _single_row(ca) and _single_row(cb):
        na, nb = _arity(ca), _arity(cb)
        if na is not None and nb is not None and na != nb:
            # One-row results of different width differ everywhere.
            return DISTINCT
    return UNKNOWN


def _schema_resolver(schema: Optional[DatabaseSchema]) -> Resolver:
    if schema is None:
        return _null_resolver

    def resolve(ref: ColumnRef) -> Optional[Column]:
        if ref.column == "*":
            return None
        if ref.table:
            if not schema.has_table(ref.table):
                return None
            table = schema.table(ref.table)
            return table.column(ref.column) if table.has_column(ref.column) else None
        hits = [
            t for t in schema.tables if t.has_column(ref.column)
        ]
        if len(hits) != 1:
            return None
        return hits[0].column(ref.column)

    return resolve


def _is_aggregate_expr(expr: object) -> bool:
    return isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATES


def _has_aggregate(core: SelectCore) -> bool:
    return any(_is_aggregate_expr(item.expr) for item in core.items)


def _single_core(query: Query) -> Optional[SelectCore]:
    if query.set_op is not None:
        return None
    return query.core


def _single_row(query: Query) -> bool:
    """Provably returns exactly one row: aggregate-only, ungrouped."""
    core = _single_core(query)
    if core is None or core.group_by or core.limit == 0:
        return False
    return bool(core.items) and all(
        _is_aggregate_expr(item.expr) for item in core.items
    )


def _arity(query: Query) -> Optional[int]:
    """Result width, or ``None`` when a ``*`` makes it schema-dependent."""
    core = query.core
    for item in core.items:
        if isinstance(item.expr, ColumnRef) and item.expr.column == "*":
            return None
    return len(core.items)


def _always_empty(query: Query, resolver: Resolver) -> bool:
    """Provably returns zero rows on every instance."""
    core = _single_core(query)
    if core is None:
        return False
    if core.limit == 0:
        return True
    if not core.group_by and _has_aggregate(core):
        # Ungrouped aggregates emit one row even over empty input.
        return False
    return core.where is not None and satisfiable(core.where, resolver) is False


def _provably_nonempty(query: Query, resolver: Resolver) -> bool:
    """Some instance makes the query return at least one row.

    Requires a freely-populatable FROM (base tables, bare inner joins)
    and a WHERE the domain engine fully understands as satisfiable —
    then an instance realizing the satisfying assignment exists.
    """
    core = _single_core(query)
    if core is None or core.from_clause is None:
        return False
    if core.limit == 0:
        return False
    if not all(
        isinstance(source, TableRef)
        for source in core.from_clause.sources()
    ):
        return False
    if not all(
        join.kind == "JOIN" and join.condition is None and not join.using
        for join in core.from_clause.joins
    ):
        return False
    if core.having is not None:
        return False
    if core.where is not None and satisfiable(core.where, resolver) is not True:
        return False
    return True


# ---------------------------------------------------------------------------
# Satisfiability: per-column domains under a conjunction
# ---------------------------------------------------------------------------


class _Contradiction(Exception):
    """A conjunction can never evaluate to TRUE."""

    def __init__(self, message: str, column: str) -> None:
        super().__init__(message)
        self.message = message
        self.column = column


@dataclass
class _Domain:
    """Accumulated constraints on one column inside a conjunction."""

    name: str
    column: Optional[Column] = None
    low: Optional[float] = None
    low_strict: bool = False
    high: Optional[float] = None
    high_strict: bool = False
    pinned: bool = False
    eq: Optional[_Value] = None
    neq: Set[_Value] = field(default_factory=set)
    allowed: Optional[Set[_Value]] = None
    null: Optional[bool] = None  # True: IS NULL proven; False: NOT NULL

    def _fail(self, message: str) -> None:
        raise _Contradiction(message, self.name)

    def require_not_null(self, reason: str) -> None:
        if self.null is True:
            self._fail(f"{self.name} cannot be NULL and satisfy {reason}")
        self.null = False

    def add_null(self, negated: bool) -> None:
        wants = not negated
        if self.null is not None and self.null != wants:
            self._fail(
                f"{self.name} cannot be both NULL and NOT NULL"
            )
        if wants and (
            self.pinned
            or self.low is not None
            or self.high is not None
            or self.neq
            or self.allowed is not None
        ):
            self._fail(
                f"{self.name} IS NULL contradicts its other comparisons"
            )
        self.null = wants

    def add_eq(self, value: _Value, text: str) -> None:
        self.require_not_null(text)
        if self.pinned and self.eq != value:
            self._fail(f"{self.name} cannot equal both {self.eq!r} and {value!r}")
        if value in self.neq:
            self._fail(f"{text} contradicts {self.name} != {value!r}")
        if self.allowed is not None and value not in self.allowed:
            self._fail(f"{text} is outside the IN set of {self.name}")
        self._check_bounds(value, text)
        self._check_column_domain(value, text)
        self.pinned = True
        self.eq = value

    def add_neq(self, value: _Value, text: str) -> None:
        self.require_not_null(text)
        if self.pinned and self.eq == value:
            self._fail(f"{text} contradicts {self.name} = {value!r}")
        self.neq.add(value)
        if self.allowed is not None:
            self.allowed = {v for v in self.allowed if v != value}
            if not self.allowed:
                self._fail(f"{text} empties the IN set of {self.name}")

    def add_in(self, values: Set[_Value], text: str) -> None:
        self.require_not_null(text)
        values = {v for v in values if v not in self.neq}
        if self.allowed is None:
            self.allowed = values
        else:
            self.allowed &= values
        if self.pinned and self.eq not in self.allowed:
            self._fail(f"{text} excludes pinned value {self.eq!r}")
        if not self.allowed:
            self._fail(f"{text} leaves no possible value for {self.name}")

    def add_bound(self, op: str, value: float, text: str) -> None:
        self.require_not_null(text)
        if op in (">", ">="):
            strict = op == ">"
            if (
                self.low is None
                or value > self.low
                or (value == self.low and strict and not self.low_strict)
            ):
                self.low, self.low_strict = value, strict
        else:
            strict = op == "<"
            if (
                self.high is None
                or value < self.high
                or (value == self.high and strict and not self.high_strict)
            ):
                self.high, self.high_strict = value, strict
        if self.low is not None and self.high is not None:
            if self.low > self.high or (
                self.low == self.high and (self.low_strict or self.high_strict)
            ):
                self._fail(
                    f"bounds on {self.name} are contradictory "
                    f"({_fmt(self.low)}..{_fmt(self.high)} is empty)"
                )
        if self.pinned and isinstance(self.eq, (int, float)):
            self._check_bounds(self.eq, text)
        if self.allowed is not None:
            self.allowed = {
                v for v in self.allowed
                if not isinstance(v, (int, float)) or self._in_bounds(v)
            }
            if not self.allowed:
                self._fail(f"{text} empties the IN set of {self.name}")

    def _in_bounds(self, value: float) -> bool:
        if self.low is not None and (
            value < self.low or (value == self.low and self.low_strict)
        ):
            return False
        if self.high is not None and (
            value > self.high or (value == self.high and self.high_strict)
        ):
            return False
        return True

    def _check_bounds(self, value: _Value, text: str) -> None:
        if isinstance(value, (int, float)) and not self._in_bounds(value):
            self._fail(f"{text} falls outside the bounds on {self.name}")

    def _check_column_domain(self, value: _Value, text: str) -> None:
        if self.column is None:
            return
        if self.column.ctype == "boolean" and value not in (0, 1):
            self._fail(
                f"{text} is outside the boolean domain of {self.name}"
            )
        if (
            self.column.ctype == "number"
            and self.column.is_integer
            and isinstance(value, float)
            and not value.is_integer()
        ):
            self._fail(
                f"{text} can never match INTEGER column {self.name}"
            )


def _coerce(value: _Value, column: Optional[Column]) -> Optional[_Value]:
    """Apply SQLite affinity: literals coerce toward the column's type.

    Returns ``None`` when the comparison can never be TRUE (a
    non-numeric string against a numeric column).
    """
    if column is None:
        return value
    if column.ctype == "text" or column.ctype == "time":
        return str(value)
    if column.ctype == "number" or column.ctype == "boolean":
        if isinstance(value, str):
            try:
                return float(value) if "." in value else int(value)
            except ValueError:
                return None
        return value
    return value


# ---------------------------------------------------------------------------
# Satisfiability over a condition tree
# ---------------------------------------------------------------------------


def satisfiable(
    condition: Optional[Condition], resolver: Resolver
) -> Optional[bool]:
    """Can any row make ``condition`` evaluate to TRUE?

    ``True``/``False`` are proofs; ``None`` means the engine did not
    fully understand the predicate.  The condition is canonicalized
    first, so callers may pass raw parser output.
    """
    canon = canonicalize_condition(condition)
    if canon is None:
        return True
    return _sat(canon, resolver)


def _sat(condition: Condition, resolver: Resolver) -> Optional[bool]:
    if isinstance(condition, OrCondition):
        verdicts = [_sat(op, resolver) for op in condition.operands]
        if any(v is True for v in verdicts):
            return True
        if all(v is False for v in verdicts):
            return False
        return None
    operands = (
        condition.operands
        if isinstance(condition, AndCondition)
        else (condition,)
    )
    domains: Dict[str, _Domain] = {}
    complete = True
    try:
        for operand in operands:
            if isinstance(operand, (AndCondition, OrCondition)):
                nested = _sat(operand, resolver)
                if nested is False:
                    return False
                # A satisfiable disjunct may still conflict with the
                # sibling constraints; never claim a joint proof.
                complete = False
            elif not _absorb(operand, domains, resolver):
                complete = False
    except _Contradiction:
        return False
    return True if complete else None


def _domain_for(
    ref: ColumnRef, domains: Dict[str, _Domain], resolver: Resolver
) -> _Domain:
    key = ref.key()
    if key not in domains:
        domains[key] = _Domain(name=key, column=resolver(ref))
    return domains[key]


def _absorb(
    leaf: Condition, domains: Dict[str, _Domain], resolver: Resolver
) -> bool:
    """Fold one conjunct into the per-column domains.

    Returns ``True`` when the leaf was fully understood (its constraint
    is completely captured), ``False`` otherwise.  Raises
    :class:`_Contradiction` when the conjunction becomes unsatisfiable.
    """
    text = condition_text(leaf)
    if isinstance(leaf, Comparison):
        left, right = leaf.left, leaf.right
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if left.key() != right.key():
                return False
            # x OP x: TRUE iff x is not NULL and OP is reflexive.
            domain = _domain_for(left, domains, resolver)
            if leaf.op in ("=", "<=", ">="):
                domain.require_not_null(text)
                return True
            raise _Contradiction(
                f"{text} can never be true", left.key()
            )
        if isinstance(left, Literal) and isinstance(right, Literal):
            verdict = _literal_comparison(left, leaf.op, right)
            if verdict is False:
                raise _Contradiction(f"{text} is always false", "")
            return verdict is True
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return _absorb_comparison(left, leaf.op, right, text, domains, resolver)
        return False
    if isinstance(leaf, InCondition):
        if not isinstance(leaf.expr, ColumnRef) or isinstance(leaf.values, Query):
            return False
        domain = _domain_for(leaf.expr, domains, resolver)
        raw = [v.python_value() for v in leaf.values]
        if leaf.negated:
            if any(v is None for v in raw):
                # NOT IN with a NULL member is never TRUE.
                raise _Contradiction(
                    f"{text} contains NULL and can never be true",
                    leaf.expr.key(),
                )
            for value in raw:
                assert value is not None
                coerced = _coerce(value, domain.column)
                if coerced is not None:
                    domain.add_neq(coerced, text)
            return True
        members: Set[_Value] = set()
        for value in raw:
            if value is None:
                continue  # a NULL member never matches, others still can
            coerced = _coerce(value, domain.column)
            if coerced is not None:
                members.add(coerced)
        if not members:
            raise _Contradiction(
                f"{text} has no matchable values", leaf.expr.key()
            )
        domain.add_in(members, text)
        return True
    if isinstance(leaf, IsNullCondition):
        if not isinstance(leaf.expr, ColumnRef):
            return False
        _domain_for(leaf.expr, domains, resolver).add_null(leaf.negated)
        return True
    if isinstance(leaf, LikeCondition):
        if isinstance(leaf.expr, ColumnRef):
            # LIKE only matches non-NULL values; the pattern itself is
            # beyond the domain engine.
            _domain_for(leaf.expr, domains, resolver).require_not_null(text)
        return False
    # Subqueries, EXISTS, residual NOT: opaque.
    return False


def _absorb_comparison(
    ref: ColumnRef,
    op: str,
    literal: Literal,
    text: str,
    domains: Dict[str, _Domain],
    resolver: Resolver,
) -> bool:
    domain = _domain_for(ref, domains, resolver)
    raw = literal.python_value()
    if raw is None:
        # Comparison against NULL is never TRUE.
        raise _Contradiction(f"{text} compares against NULL", ref.key())
    value = _coerce(raw, domain.column)
    if value is None:
        if op == "=":
            raise _Contradiction(
                f"{text} can never match numeric column {ref.key()}",
                ref.key(),
            )
        return False
    if op == "=":
        domain.add_eq(value, text)
        return True
    if op == "!=":
        domain.add_neq(value, text)
        return True
    if isinstance(value, (int, float)):
        domain.add_bound(op, float(value), text)
        return True
    # Range comparison on text: register NOT NULL, stay incomplete.
    domain.require_not_null(text)
    return False


def _literal_comparison(
    left: Literal, op: str, right: Literal
) -> Optional[bool]:
    lv, rv = left.python_value(), right.python_value()
    if lv is None or rv is None:
        return False  # NULL comparisons are never TRUE
    if isinstance(lv, str) != isinstance(rv, str):
        return None  # mixed-affinity constant comparison: skip
    try:
        if op == "=":
            return bool(lv == rv)
        if op == "!=":
            return bool(lv != rv)
        if op == "<":
            return bool(lv < rv)  # type: ignore[operator]
        if op == "<=":
            return bool(lv <= rv)  # type: ignore[operator]
        if op == ">":
            return bool(lv > rv)  # type: ignore[operator]
        if op == ">=":
            return bool(lv >= rv)  # type: ignore[operator]
    except TypeError:  # pragma: no cover - guarded by the isinstance check
        return None
    return None


# ---------------------------------------------------------------------------
# Findings for the analyzer (sem:* rules)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SemanticFinding:
    """One satisfiability insight about a condition tree."""

    kind: str  # "always-empty" | "tautology" | "redundant-predicate"
    message: str
    column: str = ""
    fix: str = ""


def condition_findings(
    condition: Optional[Condition],
    resolver: Optional[Resolver] = None,
) -> List[SemanticFinding]:
    """Contradictions, tautologies, and redundancies in one condition.

    The tree is canonicalized first (De Morgan, BETWEEN expansion, …)
    so findings hold regardless of spelling.  ``resolver`` supplies
    column types for domain checks; omit it for type-blind analysis.
    """
    resolve = resolver if resolver is not None else _null_resolver
    canon = canonicalize_condition(condition)
    if canon is None:
        return []
    findings: List[SemanticFinding] = []
    _walk_findings(canon, resolve, findings)
    return findings


def _walk_findings(
    condition: Condition, resolver: Resolver, findings: List[SemanticFinding]
) -> None:
    if isinstance(condition, OrCondition):
        for operand in condition.operands:
            if isinstance(operand, (AndCondition, OrCondition)):
                _walk_findings(operand, resolver, findings)
        _or_findings(condition, findings)
        return
    operands = (
        condition.operands
        if isinstance(condition, AndCondition)
        else (condition,)
    )
    for operand in operands:
        if isinstance(operand, (AndCondition, OrCondition)):
            _walk_findings(operand, resolver, findings)
    _and_findings(operands, resolver, findings)


def _and_findings(
    operands: Tuple[Condition, ...],
    resolver: Resolver,
    findings: List[SemanticFinding],
) -> None:
    domains: Dict[str, _Domain] = {}
    try:
        for operand in operands:
            if not isinstance(operand, (AndCondition, OrCondition)):
                _absorb(operand, domains, resolver)
    except _Contradiction as contradiction:
        findings.append(
            SemanticFinding(
                kind="always-empty",
                message=f"condition can never be true: {contradiction.message}",
                column=_bare_column(contradiction.column),
            )
        )
        return
    _redundancy_findings(operands, resolver, findings)


def _redundancy_findings(
    operands: Tuple[Condition, ...],
    resolver: Resolver,
    findings: List[SemanticFinding],
) -> None:
    """A conjunct implied by one sibling is dead weight."""
    leaves = [
        op for op in operands
        if not isinstance(op, (AndCondition, OrCondition))
    ]
    if len(leaves) < 2:
        return
    for index, weak in enumerate(leaves):
        for other, strong in enumerate(leaves):
            if index == other:
                continue
            if _implies(strong, weak, resolver):
                findings.append(
                    SemanticFinding(
                        kind="redundant-predicate",
                        message=(
                            f"{condition_text(weak)} is implied by "
                            f"{condition_text(strong)}"
                        ),
                        column=_leaf_column(weak),
                        fix=f"drop {condition_text(weak)}",
                    )
                )
                break


def _implies(strong: Condition, weak: Condition, resolver: Resolver) -> bool:
    """Does ``strong`` TRUE force ``weak`` TRUE?  (Numeric bounds and
    equality-vs-bound on the same column only — deliberately minimal.)"""
    if not isinstance(strong, Comparison) or not isinstance(weak, Comparison):
        return False
    if not (
        isinstance(strong.left, ColumnRef)
        and isinstance(weak.left, ColumnRef)
        and strong.left.key() == weak.left.key()
        and isinstance(strong.right, Literal)
        and isinstance(weak.right, Literal)
    ):
        return False
    sv, wv = strong.right.python_value(), weak.right.python_value()
    if not isinstance(sv, (int, float)) or not isinstance(wv, (int, float)):
        return False
    if strong.op == "=" and weak.op in ("<", "<=", ">", ">=", "!="):
        return _literal_comparison(
            strong.right, weak.op, weak.right
        ) is True
    bounds = {
        (">", ">"): sv >= wv,
        (">", ">="): sv >= wv,
        (">=", ">="): sv >= wv,
        (">=", ">"): sv > wv,
        ("<", "<"): sv <= wv,
        ("<", "<="): sv <= wv,
        ("<=", "<="): sv <= wv,
        ("<=", "<"): sv < wv,
    }
    return bounds.get((strong.op, weak.op), False)


#: Comparison pairs (in sorted-op order) that cover every non-NULL value.
_COMPLEMENTS = {("!=", "="), ("<", ">="), ("<=", ">")}


def _or_findings(
    condition: OrCondition, findings: List[SemanticFinding]
) -> None:
    leaves = [
        op for op in condition.operands
        if not isinstance(op, (AndCondition, OrCondition))
    ]
    comparisons = [
        leaf for leaf in leaves
        if isinstance(leaf, Comparison)
        and isinstance(leaf.left, ColumnRef)
        and isinstance(leaf.right, Literal)
    ]
    for index, a in enumerate(comparisons):
        for b in comparisons[index + 1:]:
            assert isinstance(a.left, ColumnRef)
            assert isinstance(b.left, ColumnRef)
            if a.left.key() != b.left.key():
                continue
            av = a.right.python_value() if isinstance(a.right, Literal) else None
            bv = b.right.python_value() if isinstance(b.right, Literal) else None
            if av is None or bv is None:
                continue
            ordered = tuple(sorted((a.op, b.op)))
            if ordered in _COMPLEMENTS and av == bv:
                findings.append(_tautology(a, b))
                continue
            # Overlapping half-lines: x <= hi OR x >= lo with lo <= hi.
            low_op, high_op = None, None
            if a.op in ("<", "<=") and b.op in (">", ">="):
                low_op, high_op = b, a
            elif b.op in ("<", "<=") and a.op in (">", ">="):
                low_op, high_op = a, b
            if low_op is not None and high_op is not None:
                lov = low_op.right.python_value()
                hiv = high_op.right.python_value()
                if (
                    isinstance(lov, (int, float))
                    and isinstance(hiv, (int, float))
                    and (
                        lov < hiv
                        or (
                            lov == hiv
                            and ("=" in low_op.op or "=" in high_op.op)
                        )
                    )
                ):
                    findings.append(_tautology(low_op, high_op))
    # IS NULL OR IS NOT NULL genuinely covers everything, NULLs included.
    nulls = [leaf for leaf in leaves if isinstance(leaf, IsNullCondition)]
    for index, a in enumerate(nulls):
        for b in nulls[index + 1:]:
            if (
                isinstance(a.expr, ColumnRef)
                and isinstance(b.expr, ColumnRef)
                and a.expr.key() == b.expr.key()
                and a.negated != b.negated
            ):
                findings.append(
                    SemanticFinding(
                        kind="tautology",
                        message=(
                            f"{condition_text(a)} OR {condition_text(b)} "
                            "is always true"
                        ),
                        column=_bare_column(a.expr.key()),
                    )
                )


def _tautology(a: Comparison, b: Comparison) -> SemanticFinding:
    assert isinstance(a.left, ColumnRef)
    return SemanticFinding(
        kind="tautology",
        message=(
            f"{condition_text(a)} OR {condition_text(b)} matches every "
            "non-NULL value"
        ),
        column=_bare_column(a.left.key()),
    )


def _leaf_column(leaf: Condition) -> str:
    expr = getattr(leaf, "left", None) or getattr(leaf, "expr", None)
    if isinstance(expr, ColumnRef):
        return _bare_column(expr.key())
    return ""


def _bare_column(key: str) -> str:
    return key.rsplit(".", 1)[-1] if key else ""
