"""Deterministic GPT-style token counting."""

from .counter import TokenCounter, count_tokens, tokenize_pieces

__all__ = ["TokenCounter", "count_tokens", "tokenize_pieces"]
