"""GPT-style token counting (the cost axis of the benchmark).

The paper prices prompts in OpenAI-tokenizer tokens.  Offline we use a
deterministic approximation with the same qualitative behaviour: common
short words are one token, longer words split into ~4-character subword
chunks, punctuation and whitespace runs tokenize like tiktoken does (one
token per symbol, newlines separate).  Counts track tiktoken within a small
constant factor on English/SQL text, which is all the token-efficiency
comparison needs.
"""

from __future__ import annotations

import re
from typing import List

from ..cache.lru import LRUCache

_PIECE_RE = re.compile(r"[A-Za-z]+|\d+|\s+|[^\sA-Za-z\d]")

#: Words frequent enough to be single tokens in GPT vocabularies.
_COMMON = frozenset(
    """the of to and a in is it you that he was for on are with as i his they
    be at one have this from or had by word but what some we can out other
    were all there when up use your how said an each she which do their time
    if will way about many then them write would like so these her long make
    thing see him two has look more day could go come did number sound no
    most people my over know water than call first who may down side been now
    find select from where group order limit join table column value name
    database query sql text key foreign primary create not null and or
    count sum avg min max distinct between exists having union intersect
    except desc asc show list many much each every answer question""".split()
)

_SUBWORD_LEN = 4
_DIGITS_PER_TOKEN = 3


def tokenize_pieces(text: str) -> List[str]:
    """Split text into the pieces the counter prices individually."""
    return _PIECE_RE.findall(text)


def count_tokens(text: str) -> int:
    """Approximate GPT token count of ``text``.

    Deterministic, monotone in text length, and sensitive to the same
    things tiktoken is (long identifiers cost more than common words;
    punctuation costs one each).
    """
    total = 0
    for piece in tokenize_pieces(text):
        if piece.isspace():
            # Runs of spaces mostly merge into the following token; newlines
            # count on their own.
            total += piece.count("\n")
            continue
        if piece.isdigit():
            total += max(1, (len(piece) + _DIGITS_PER_TOKEN - 1) // _DIGITS_PER_TOKEN)
            continue
        if piece.isalpha():
            lower = piece.lower()
            if lower in _COMMON or len(piece) <= _SUBWORD_LEN:
                total += 1
            else:
                total += (len(piece) + _SUBWORD_LEN - 1) // _SUBWORD_LEN
            continue
        total += 1
    return total


class TokenCounter:
    """Object form of :func:`count_tokens`, with a memo for repeated texts.

    Prompt construction re-counts the same schema/example blocks many times
    during budget fitting; the cache makes that cheap.  The memo is a
    bounded, thread-safe LRU (:mod:`repro.cache.lru`) — previously a dict
    that stopped accepting entries at capacity, it now keeps the *hot*
    texts live however long the sweep runs, and one counter can safely be
    shared by every builder across worker threads.
    """

    def __init__(self, max_cache: int = 50_000):
        self._cache = LRUCache(max_entries=max_cache)

    def count(self, text: str) -> int:
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        value = count_tokens(text)
        self._cache.put(text, value)
        return value
