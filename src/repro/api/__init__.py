"""``repro.api`` — the stable public facade.

Five PRs of internals left the import surface scattered: examples and
downstream scripts were reaching into ``repro.eval.engine``,
``repro.eval.pipeline`` and friends, none of which promise stability.
This package is the one import surface that does.

Stability policy (also in ``docs/architecture.md``):

* Everything in ``__all__`` here is **stable**: it changes only with a
  deprecation cycle (one release of ``DeprecationWarning`` before
  removal or an incompatible signature change).
* Anything imported from a ``repro.*`` submodule directly is internal —
  it may move or change between releases without notice.
* The HTTP wire schemas re-exported from :mod:`repro.api.wire` are
  versioned separately via ``WIRE_SCHEMA_VERSION``; see the wire
  module's docstring for the bump rules.

The facade groups four layers:

* **Evaluation** — configure and run benchmark sweeps
  (:class:`RunConfig`, :class:`BenchmarkRunner`, :class:`GridRunner`,
  :class:`EvalPipeline`, reports and persistence).
* **Analysis & reporting** — significance, cost, calibration, error
  breakdowns, ASCII tables.
* **Infrastructure handles** — the artifact cache, metrics registry,
  tracer and circuit breaker, for callers wiring observability or
  resilience around a run.
* **Serving** — the HTTP service plus its typed wire schemas.
"""

from ..cache.store import ArtifactCache, build_cache
from ..errors import (
    CircuitOpenError,
    DatasetError,
    DeadlineExceededError,
    EvaluationError,
    ExecutionError,
    ModelError,
    RateLimitedError,
    ReproError,
    ServeError,
    UnsafeSqlError,
    WireFormatError,
)
from ..eval.engine import EvalEngine, GridResult, GridRunner
from ..eval.harness import BenchmarkRunner, RunConfig, RunPlan
from ..eval.metrics import EvalReport, PredictionRecord
from ..eval.persistence import load_report, load_reports, save_report, save_reports
from ..eval.pipeline import EvalPipeline
from ..eval.telemetry import RunTelemetry, TelemetryCollector
from ..eval.calibration import model_calibration
from ..eval.cost import cost_per_question_usd, report_cost_usd
from ..eval.error_analysis import error_breakdown
from ..eval.reporting import format_matrix, format_series, format_table, percent
from ..eval.significance import Comparison, compare_reports, mcnemar_exact
from ..eval.test_suite import TestSuite, test_suite_accuracy
from ..experiments.context import ExperimentContext, get_context
from ..llm.simulated import make_llm
from ..obs.metrics import MetricsRegistry, parse_prometheus
from ..obs.trace import Tracer, build_tracer
from ..resilience.breaker import CircuitBreaker
from .wire import (
    WIRE_SCHEMA_VERSION,
    ErrorResponse,
    ExecuteRequest,
    ExecuteResponse,
    ExplainRequest,
    ExplainResponse,
    GenerateRequest,
    GenerateResponse,
    LintRequest,
    LintResponse,
)

#: Serving names resolved lazily: ``repro.serve`` itself imports the
#: wire schemas from this package, so an eager import here would be a
#: cycle.  ``__getattr__`` defers the serve import until first use.
_SERVE_EXPORTS = {
    "CoalescingClient": "coalesce",
    "GenerateCoalescer": "coalesce",
    "RateLimiter": "ratelimit",
    "SqlServer": "http",
    "SqlService": "service",
    "build_server": "http",
}


def __getattr__(name: str):
    module = _SERVE_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    resolved = getattr(
        importlib.import_module(f"repro.serve.{module}"), name
    )
    globals()[name] = resolved  # cache for subsequent lookups
    return resolved


__all__ = [
    # evaluation
    "BenchmarkRunner",
    "EvalEngine",
    "EvalPipeline",
    "EvalReport",
    "GridResult",
    "GridRunner",
    "PredictionRecord",
    "RunConfig",
    "RunPlan",
    "RunTelemetry",
    "TelemetryCollector",
    "load_report",
    "load_reports",
    "save_report",
    "save_reports",
    # analysis & reporting
    "Comparison",
    "TestSuite",
    "compare_reports",
    "cost_per_question_usd",
    "error_breakdown",
    "format_matrix",
    "format_series",
    "format_table",
    "mcnemar_exact",
    "model_calibration",
    "percent",
    "report_cost_usd",
    "test_suite_accuracy",
    # infrastructure handles
    "ArtifactCache",
    "CircuitBreaker",
    "ExperimentContext",
    "MetricsRegistry",
    "Tracer",
    "build_cache",
    "build_tracer",
    "get_context",
    "make_llm",
    "parse_prometheus",
    # serving
    "CoalescingClient",
    "GenerateCoalescer",
    "RateLimiter",
    "SqlServer",
    "SqlService",
    "build_server",
    # wire schemas
    "WIRE_SCHEMA_VERSION",
    "ErrorResponse",
    "ExecuteRequest",
    "ExecuteResponse",
    "ExplainRequest",
    "ExplainResponse",
    "GenerateRequest",
    "GenerateResponse",
    "LintRequest",
    "LintResponse",
    # errors
    "CircuitOpenError",
    "DatasetError",
    "DeadlineExceededError",
    "EvaluationError",
    "ExecutionError",
    "ModelError",
    "RateLimitedError",
    "ReproError",
    "ServeError",
    "UnsafeSqlError",
    "WireFormatError",
]
