"""Versioned wire schemas for the serving layer.

Every ``repro.serve`` endpoint speaks JSON bodies that map one-to-one
onto the dataclasses here.  The schemas are *the* compatibility
contract of the HTTP API:

- ``WIRE_SCHEMA_VERSION`` names the current schema generation.  A
  request may carry a ``"version"`` field; omitting it means "current".
  A mismatched version is rejected up front (HTTP 400) rather than
  half-interpreted.
- Parsing is **strict**: unknown keys, missing required fields and
  wrong types all raise :class:`~repro.errors.WireFormatError` with a
  message naming the offending field.  A schema bump is therefore an
  explicit, reviewable event — new optional fields require a version
  bump, and old clients keep working within a generation.
- Every response carries ``"version"`` so clients can assert what they
  are decoding.

The dataclasses are transport-independent plain data; ``from_json`` /
``to_json`` are the only (de)serialization paths, used identically by
the server, the tests' golden fixtures, and the load generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import WireFormatError
from ..sql.dialect import REFERENCE_DIALECT, dialect_names

#: Current wire-schema generation.  Bump on any incompatible change to
#: the request or response shapes below (see docs/architecture.md for
#: the versioning rules).
#:
#: v2: lint/execute requests gained the optional ``dialect`` field (the
#: SQL dialect the statement is written in; default ``"sqlite"``).
#:
#: v3: every response (errors included) gained the ``request_id`` field,
#: echoing the ``X-Request-Id`` header the server accepted or minted —
#: the correlation key for traces, access-log lines and journal entries.
#: Requests are unchanged: the id is transport metadata, carried in the
#: header, never in request bodies.
#:
#: v4: generate requests gained the optional ``feedback_rounds`` field —
#: the per-request ceiling on execution-feedback repair rounds (0, the
#: default, defers to the server's configured default; values above
#: the loop's hard maximum are rejected with HTTP 400).
WIRE_SCHEMA_VERSION = 4

#: Ceiling applied to per-request deadline budgets (seconds).
MAX_DEADLINE_S = 120.0


def _require_mapping(payload: object) -> Mapping[str, object]:
    if not isinstance(payload, Mapping):
        raise WireFormatError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_version(payload: Mapping[str, object]) -> None:
    version = payload.get("version", WIRE_SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireFormatError("'version' must be an integer")
    if version != WIRE_SCHEMA_VERSION:
        raise WireFormatError(
            f"unsupported wire schema version {version} "
            f"(this server speaks version {WIRE_SCHEMA_VERSION})"
        )


def _reject_unknown(payload: Mapping[str, object], allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(payload) - set(allowed) - {"version"})
    if unknown:
        raise WireFormatError(f"unknown field(s): {', '.join(unknown)}")


def _get_str(
    payload: Mapping[str, object], name: str, default: Optional[str] = None
) -> str:
    if name not in payload:
        if default is None:
            raise WireFormatError(f"missing required field '{name}'")
        return default
    value = payload[name]
    if not isinstance(value, str):
        raise WireFormatError(f"'{name}' must be a string")
    return value


def _get_nonempty_str(payload: Mapping[str, object], name: str) -> str:
    value = _get_str(payload, name)
    if not value.strip():
        raise WireFormatError(f"'{name}' must be a non-empty string")
    return value


def _get_bool(payload: Mapping[str, object], name: str, default: bool) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise WireFormatError(f"'{name}' must be a boolean")
    return value


def _get_int(
    payload: Mapping[str, object], name: str, default: int, minimum: int = 1
) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise WireFormatError(f"'{name}' must be an integer")
    if value < minimum:
        raise WireFormatError(f"'{name}' must be >= {minimum}, got {value}")
    return value


def _get_feedback_rounds(payload: Mapping[str, object]) -> int:
    from ..repair.feedback import MAX_FEEDBACK_ROUNDS

    value = _get_int(payload, "feedback_rounds", 0, minimum=0)
    if value > MAX_FEEDBACK_ROUNDS:
        raise WireFormatError(
            f"'feedback_rounds' must be <= {MAX_FEEDBACK_ROUNDS}, "
            f"got {value}"
        )
    return value


def _get_dialect(payload: Mapping[str, object]) -> str:
    value = _get_str(payload, "dialect", REFERENCE_DIALECT)
    if value not in dialect_names():
        raise WireFormatError(
            f"unknown dialect {value!r}; known: {', '.join(dialect_names())}"
        )
    return value


def _get_deadline(payload: Mapping[str, object], default: float) -> float:
    value = payload.get("deadline_s", default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireFormatError("'deadline_s' must be a number")
    deadline = float(value)
    if deadline <= 0:
        raise WireFormatError(f"'deadline_s' must be positive, got {deadline}")
    return min(deadline, MAX_DEADLINE_S)


# -- requests ----------------------------------------------------------------


@dataclass(frozen=True)
class GenerateRequest:
    """``POST /v1/generate`` — natural-language question to SQL."""

    question: str
    db_id: str
    tenant: str = "default"
    n_samples: int = 1
    deadline_s: float = 30.0
    #: Per-request cap on execution-feedback repair rounds; 0 defers to
    #: the server's configured default.
    feedback_rounds: int = 0

    _FIELDS = (
        "question", "db_id", "tenant", "n_samples", "deadline_s",
        "feedback_rounds",
    )

    @classmethod
    def from_json(cls, payload: object) -> "GenerateRequest":
        body = _require_mapping(payload)
        _check_version(body)
        _reject_unknown(body, cls._FIELDS)
        return cls(
            question=_get_nonempty_str(body, "question"),
            db_id=_get_nonempty_str(body, "db_id"),
            tenant=_get_str(body, "tenant", "default"),
            n_samples=_get_int(body, "n_samples", 1),
            deadline_s=_get_deadline(body, 30.0),
            feedback_rounds=_get_feedback_rounds(body),
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "question": self.question,
            "db_id": self.db_id,
            "tenant": self.tenant,
            "n_samples": self.n_samples,
            "deadline_s": self.deadline_s,
            "feedback_rounds": self.feedback_rounds,
        }


@dataclass(frozen=True)
class LintRequest:
    """``POST /v1/lint`` — static analysis (and optional repair) only."""

    db_id: str
    sql: str
    repair: bool = False
    dialect: str = REFERENCE_DIALECT
    tenant: str = "default"
    deadline_s: float = 10.0

    _FIELDS = ("db_id", "sql", "repair", "dialect", "tenant", "deadline_s")

    @classmethod
    def from_json(cls, payload: object) -> "LintRequest":
        body = _require_mapping(payload)
        _check_version(body)
        _reject_unknown(body, cls._FIELDS)
        return cls(
            db_id=_get_nonempty_str(body, "db_id"),
            sql=_get_nonempty_str(body, "sql"),
            repair=_get_bool(body, "repair", False),
            dialect=_get_dialect(body),
            tenant=_get_str(body, "tenant", "default"),
            deadline_s=_get_deadline(body, 10.0),
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "db_id": self.db_id,
            "sql": self.sql,
            "repair": self.repair,
            "dialect": self.dialect,
            "tenant": self.tenant,
            "deadline_s": self.deadline_s,
        }


@dataclass(frozen=True)
class ExecuteRequest:
    """``POST /v1/execute`` — run a statement behind the safety gate."""

    db_id: str
    sql: str
    dialect: str = REFERENCE_DIALECT
    tenant: str = "default"
    deadline_s: float = 10.0

    _FIELDS = ("db_id", "sql", "dialect", "tenant", "deadline_s")

    @classmethod
    def from_json(cls, payload: object) -> "ExecuteRequest":
        body = _require_mapping(payload)
        _check_version(body)
        _reject_unknown(body, cls._FIELDS)
        return cls(
            db_id=_get_nonempty_str(body, "db_id"),
            sql=_get_nonempty_str(body, "sql"),
            dialect=_get_dialect(body),
            tenant=_get_str(body, "tenant", "default"),
            deadline_s=_get_deadline(body, 10.0),
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "db_id": self.db_id,
            "sql": self.sql,
            "dialect": self.dialect,
            "tenant": self.tenant,
            "deadline_s": self.deadline_s,
        }


@dataclass(frozen=True)
class ExplainRequest:
    """``POST /v1/explain`` — show the prompt a generate would send."""

    question: str
    db_id: str
    tenant: str = "default"
    deadline_s: float = 10.0

    _FIELDS = ("question", "db_id", "tenant", "deadline_s")

    @classmethod
    def from_json(cls, payload: object) -> "ExplainRequest":
        body = _require_mapping(payload)
        _check_version(body)
        _reject_unknown(body, cls._FIELDS)
        return cls(
            question=_get_nonempty_str(body, "question"),
            db_id=_get_nonempty_str(body, "db_id"),
            tenant=_get_str(body, "tenant", "default"),
            deadline_s=_get_deadline(body, 10.0),
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "question": self.question,
            "db_id": self.db_id,
            "tenant": self.tenant,
            "deadline_s": self.deadline_s,
        }


# -- responses ---------------------------------------------------------------


@dataclass(frozen=True)
class GenerateResponse:
    """Predicted SQL plus generation accounting."""

    sql: str
    db_id: str
    statement_kind: str
    error_class: str
    fatal: bool
    prompt_tokens: int
    completion_tokens: int
    n_examples: int
    cached: bool
    request_id: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "request_id": self.request_id,
            "sql": self.sql,
            "db_id": self.db_id,
            "statement_kind": self.statement_kind,
            "error_class": self.error_class,
            "fatal": self.fatal,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "n_examples": self.n_examples,
            "cached": self.cached,
        }


@dataclass(frozen=True)
class LintResponse:
    """Analyzer verdict for one statement."""

    db_id: str
    statement_kind: str
    fatal: bool
    error_class: str
    final_sql: str
    repaired_sql: str
    diagnostics: List[Dict[str, object]] = field(default_factory=list)
    request_id: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "request_id": self.request_id,
            "db_id": self.db_id,
            "statement_kind": self.statement_kind,
            "fatal": self.fatal,
            "error_class": self.error_class,
            "final_sql": self.final_sql,
            "repaired_sql": self.repaired_sql,
            "diagnostics": self.diagnostics,
        }


@dataclass(frozen=True)
class ExecuteResponse:
    """Result rows of a safety-gated execution."""

    db_id: str
    sql: str
    rows: List[List[object]]
    row_count: int
    request_id: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "request_id": self.request_id,
            "db_id": self.db_id,
            "sql": self.sql,
            "rows": self.rows,
            "row_count": self.row_count,
        }


@dataclass(frozen=True)
class ExplainResponse:
    """The prompt ``/v1/generate`` would send, without generating."""

    db_id: str
    question: str
    prompt_text: str
    prompt_tokens: int
    n_examples: int
    example_blocks: List[Dict[str, str]] = field(default_factory=list)
    request_id: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WIRE_SCHEMA_VERSION,
            "request_id": self.request_id,
            "db_id": self.db_id,
            "question": self.question,
            "prompt_text": self.prompt_text,
            "prompt_tokens": self.prompt_tokens,
            "n_examples": self.n_examples,
            "example_blocks": self.example_blocks,
        }


@dataclass(frozen=True)
class ErrorResponse:
    """Uniform error body for every non-2xx response."""

    error: str
    message: str
    detail: List[Dict[str, object]] = field(default_factory=list)
    request_id: str = ""

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "version": WIRE_SCHEMA_VERSION,
            "request_id": self.request_id,
            "error": self.error,
            "message": self.message,
        }
        if self.detail:
            out["detail"] = self.detail
        return out
