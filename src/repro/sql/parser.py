"""Recursive-descent parser for the Spider SQL subset.

The accepted grammar (roughly)::

    query        := select_core (set_op query)?
    set_op       := UNION [ALL] | INTERSECT | EXCEPT
    select_core  := SELECT [DISTINCT] select_item ("," select_item)*
                    [FROM from_clause]
                    [WHERE condition]
                    [GROUP BY expr ("," expr)*]
                    [HAVING condition]
                    [ORDER BY order_item ("," order_item)*]
                    [LIMIT number]
    from_clause  := source (join_step | "," source)*
    join_step    := [INNER | LEFT [OUTER]] JOIN source [ON condition]
    source       := table [AS? alias] | "(" query ")" [AS? alias]
    condition    := or_cond
    or_cond      := and_cond (OR and_cond)*
    and_cond     := not_cond (AND not_cond)*
    not_cond     := NOT not_cond | predicate
    predicate    := EXISTS "(" query ")"
                  | expr comparison
                  | "(" condition ")"
    comparison   := (= | != | < | > | <= | >=) (expr | "(" query ")")
                  | [NOT] IN "(" (query | literal_list) ")"
                  | [NOT] LIKE string
                  | [NOT] BETWEEN operand AND operand
                  | IS [NOT] NULL
    expr         := term (("+" | "-" | "||") term)*
    term         := factor (("*" | "/" | "%") factor)*
    factor       := literal | func "(" [DISTINCT] expr ")" | column
                  | "(" expr ")" | case_expr
    case_expr    := CASE (WHEN condition THEN expr)+ [ELSE expr] END
    column       := [table "."] (name | "*")

Comma-separated FROM sources are normalised into explicit joins with no ON
condition, matching how Spider corpora mix both styles.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import SQLSyntaxError
from .ast_nodes import (
    AndCondition,
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    Join,
    LikeCondition,
    Literal,
    NotCondition,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    SubqueryTable,
    TableRef,
)
from .tokens import AGGREGATES, SCALAR_FUNCTIONS, Token, TokenType, tokenize

_COMPARISON_OPS = frozenset({"=", "!=", "<", ">", "<=", ">="})
_SET_OPS = frozenset({"UNION", "INTERSECT", "EXCEPT"})


class _Parser:
    """Stateful cursor over a token list."""

    def __init__(self, tokens: List[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._index = 0

    # -- cursor primitives -------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self.current
        return SQLSyntaxError(
            f"{message} (got {token.type.value} {token.value!r} at index {self._index})",
            sql=self._sql,
            position=self._index,
        )

    def _accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> None:
        if not self._accept_keyword(name):
            raise self._error(f"expected keyword {name}")

    def _accept_punct(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise self._error(f"expected {value!r}")

    def _expect_ident(self) -> str:
        token = self.current
        if token.type is TokenType.IDENT:
            self._advance()
            return token.value
        raise self._error("expected identifier")

    # -- grammar -----------------------------------------------------------

    def parse_query(self) -> Query:
        core = self.parse_select_core()
        if self.current.is_keyword(*_SET_OPS):
            op = self._advance().value
            if op == "UNION" and self._accept_keyword("ALL"):
                op = "UNION ALL"
            rest = self.parse_query()
            return Query(core=core, set_op=op, set_query=rest)
        return Query(core=core)

    def parse_select_core(self) -> SelectCore:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        from_clause = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from()

        where = self._parse_condition() if self._accept_keyword("WHERE") else None

        group_by: Tuple[Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self.parse_expr()]
            while self._accept_punct(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)

        having = self._parse_condition() if self._accept_keyword("HAVING") else None

        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            orders = [self._parse_order_item()]
            while self._accept_punct(","):
                orders.append(self._parse_order_item())
            order_by = tuple(orders)

        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise self._error("expected number after LIMIT")
            self._advance()
            limit = int(float(token.value))

        return SelectCore(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT and not self._starts_clause():
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _starts_clause(self) -> bool:
        # Identifiers never start a clause; this hook exists for symmetry and
        # future keywords that are lexed as identifiers.
        return False

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        direction = "ASC"
        if self._accept_keyword("ASC"):
            direction = "ASC"
        elif self._accept_keyword("DESC"):
            direction = "DESC"
        return OrderItem(expr=expr, direction=direction)

    # -- FROM --------------------------------------------------------------

    def _parse_from(self) -> FromClause:
        source = self._parse_table_source()
        joins: List[Join] = []
        while True:
            if self._accept_punct(","):
                joins.append(Join(source=self._parse_table_source(), condition=None))
                continue
            kind = self._parse_join_kind()
            if kind is None:
                break
            join_source = self._parse_table_source()
            condition = None
            using: Tuple[str, ...] = ()
            if self._accept_keyword("ON"):
                condition = self._parse_condition()
            elif self._accept_keyword("USING"):
                self._expect_punct("(")
                columns = [self._expect_ident()]
                while self._accept_punct(","):
                    columns.append(self._expect_ident())
                self._expect_punct(")")
                using = tuple(columns)
            joins.append(
                Join(source=join_source, condition=condition, kind=kind,
                     using=using)
            )
        return FromClause(source=source, joins=tuple(joins))

    def _parse_join_kind(self) -> Optional[str]:
        if self._accept_keyword("JOIN"):
            return "JOIN"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "JOIN"
        if self._accept_keyword("LEFT") or self._accept_keyword("RIGHT"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "LEFT JOIN"
        return None

    def _parse_table_source(self) -> Union[TableRef, SubqueryTable]:
        if self._accept_punct("("):
            query = self.parse_query()
            self._expect_punct(")")
            alias = None
            if self._accept_keyword("AS"):
                alias = self._expect_ident()
            elif self.current.type is TokenType.IDENT:
                alias = self._advance().value
            return SubqueryTable(query=query, alias=alias)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    # -- conditions ----------------------------------------------------------

    def _parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        operands = [self._parse_and()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return OrCondition(operands=tuple(operands))

    def _parse_and(self) -> Condition:
        operands = [self._parse_not()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return AndCondition(operands=tuple(operands))

    def _parse_not(self) -> Condition:
        if self.current.is_keyword("NOT") and not self._peek().is_keyword(
            "IN", "LIKE", "BETWEEN", "EXISTS", "NULL"
        ):
            self._advance()
            return NotCondition(operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Condition:
        if self.current.is_keyword("NOT") and self._peek().is_keyword("EXISTS"):
            self._advance()
            self._advance()
            self._expect_punct("(")
            query = self.parse_query()
            self._expect_punct(")")
            return ExistsCondition(query=query, negated=True)
        if self._accept_keyword("EXISTS"):
            self._expect_punct("(")
            query = self.parse_query()
            self._expect_punct(")")
            return ExistsCondition(query=query)
        if self.current.type is TokenType.PUNCT and self.current.value == "(":
            # Could be a parenthesised condition or a parenthesised
            # expression starting a comparison; try condition first.
            saved = self._index
            try:
                self._advance()
                condition = self._parse_condition()
                self._expect_punct(")")
                return condition
            except SQLSyntaxError:
                self._index = saved
        left = self.parse_expr()
        return self._parse_comparison_tail(left)

    def _parse_comparison_tail(self, left: Expr) -> Condition:
        token = self.current
        if token.type is TokenType.OP and token.value in _COMPARISON_OPS:
            op = self._advance().value
            right = self._parse_operand()
            return Comparison(op=op, left=left, right=right)

        negated = False
        if token.is_keyword("NOT"):
            negated = True
            self._advance()
            token = self.current

        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            if self.current.is_keyword("SELECT"):
                values: Union[Tuple[Literal, ...], Query] = self.parse_query()
            else:
                literals = [self._parse_literal()]
                while self._accept_punct(","):
                    literals.append(self._parse_literal())
                values = tuple(literals)
            self._expect_punct(")")
            return InCondition(expr=left, values=values, negated=negated)

        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_literal()
            return LikeCondition(expr=left, pattern=pattern, negated=negated)

        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_operand()
            self._expect_keyword("AND")
            high = self._parse_operand()
            return BetweenCondition(expr=left, low=low, high=high, negated=negated)

        if token.is_keyword("IS"):
            if negated:
                raise self._error("NOT before IS is not supported; use IS NOT NULL")
            self._advance()
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNullCondition(expr=left, negated=is_negated)

        raise self._error("expected comparison operator")

    def _parse_operand(self) -> Union[Expr, Query]:
        """Right-hand side of a comparison: expression or scalar subquery."""
        if (
            self.current.type is TokenType.PUNCT
            and self.current.value == "("
            and self._peek().is_keyword("SELECT")
        ):
            self._advance()
            query = self.parse_query()
            self._expect_punct(")")
            return query
        return self.parse_expr()

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        left = self._parse_term()
        while self.current.type is TokenType.OP and self.current.value in (
            "+", "-", "||",
        ):
            op = self._advance().value
            right = self._parse_term()
            left = BinaryExpr(op=op, left=left, right=right)
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while (
            self.current.type is TokenType.OP and self.current.value in ("/", "%")
        ) or (
            self.current.type is TokenType.PUNCT
            and self.current.value == "*"
            and self._multiplication_follows()
        ):
            op = self._advance().value
            right = self._parse_factor()
            left = BinaryExpr(op=op, left=left, right=right)
        return left

    def _multiplication_follows(self) -> bool:
        """Disambiguate ``a * b`` from a trailing wildcard.

        ``*`` is multiplication only if the next token can start a factor.
        """
        nxt = self._peek()
        if nxt.type in (TokenType.IDENT, TokenType.NUMBER, TokenType.STRING):
            return True
        if nxt.type is TokenType.PUNCT and nxt.value == "(":
            return True
        if nxt.type is TokenType.KEYWORD and nxt.value in AGGREGATES | SCALAR_FUNCTIONS:
            return True
        return False

    def _parse_factor(self) -> Expr:
        token = self.current

        if token.type is TokenType.PUNCT and token.value == "*":
            self._advance()
            return ColumnRef(column="*")

        if token.type in (TokenType.NUMBER, TokenType.STRING):
            return self._parse_literal()

        if token.type is TokenType.OP and token.value == "-":
            self._advance()
            inner = self._parse_factor()
            if isinstance(inner, Literal) and inner.kind == "number":
                return Literal(value=f"-{inner.value}", kind="number")
            return BinaryExpr(op="-", left=Literal("0", "number"), right=inner)

        if token.is_keyword("NULL"):
            self._advance()
            return Literal(value="NULL", kind="null")

        if token.is_keyword("CASE"):
            return self._parse_case()

        if token.type is TokenType.KEYWORD and token.value in AGGREGATES | SCALAR_FUNCTIONS:
            name = self._advance().value
            self._expect_punct("(")
            distinct = self._accept_keyword("DISTINCT")
            arg = self.parse_expr()
            self._expect_punct(")")
            return FuncCall(name=name, arg=arg, distinct=distinct)

        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr

        if token.type is TokenType.IDENT:
            first = self._advance().value
            if self._accept_punct("."):
                if self.current.type is TokenType.PUNCT and self.current.value == "*":
                    self._advance()
                    return ColumnRef(column="*", table=first)
                column = self._expect_ident()
                return ColumnRef(column=column, table=first)
            return ColumnRef(column=first)

        raise self._error("expected expression")

    def _parse_case(self) -> CaseExpr:
        """``CASE WHEN cond THEN expr [...] [ELSE expr] END``."""
        self._expect_keyword("CASE")
        whens = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_condition()
            self._expect_keyword("THEN")
            value = self.parse_expr()
            whens.append((condition, value))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        else_value = None
        if self._accept_keyword("ELSE"):
            else_value = self.parse_expr()
        self._expect_keyword("END")
        return CaseExpr(whens=tuple(whens), else_=else_value)

    def _parse_literal(self) -> Literal:
        token = self.current
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(value=token.value, kind="number")
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(value=token.value, kind="string")
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(value="NULL", kind="null")
        if token.type is TokenType.OP and token.value == "-":
            self._advance()
            inner = self._parse_literal()
            if inner.kind != "number":
                raise self._error("expected number after unary minus")
            return Literal(value=f"-{inner.value}", kind="number")
        raise self._error("expected literal")


def parse(sql: str) -> Query:
    """Parse SQL text into a :class:`~repro.sql.ast_nodes.Query`.

    Raises:
        SQLSyntaxError: if the text is not a single valid query in the
            Spider SQL subset (trailing tokens beyond an optional ``;`` are
            rejected).
    """
    tokens = tokenize(sql)
    parser = _Parser(tokens, sql)
    query = parser.parse_query()
    parser._accept_punct(";")
    if parser.current.type is not TokenType.EOF:
        raise parser._error("unexpected trailing tokens")
    return query


def try_parse(sql: str) -> Optional[Query]:
    """Parse SQL, returning ``None`` instead of raising on syntax errors."""
    try:
        return parse(sql)
    except SQLSyntaxError:
        return None
