"""Render an AST back to SQL text.

``parse(unparse(q)) == q`` holds structurally for every query the parser
accepts (property-tested in ``tests/sql/test_roundtrip.py``).  Without a
profile the output is valid SQLite SQL, which is what the reference
execution backend runs; with a :class:`~repro.sql.dialect.DialectProfile`
the renderer adapts identifier quoting, the ``LIMIT``/``TOP`` form,
function spellings and the string-concatenation style to that flavor
(the dialect-parameterized round-trip contract lives in
:mod:`repro.sql.transpile`).
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Optional, Union

from .ast_nodes import (
    AndCondition,
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    LikeCondition,
    Literal,
    NotCondition,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    TableRef,
    TableSource,
)
from .tokens import KEYWORDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dialect import DialectProfile

_BARE_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


def unparse(query: Query, profile: Optional["DialectProfile"] = None) -> str:
    """Render a query AST as a SQL string.

    Without ``profile`` the historical reference rendering is emitted
    byte-for-byte (identifiers always bare).  With a profile, identifiers
    that would not survive re-lexing (non-word characters, keyword
    collisions) are quoted in the profile's style and the profile's
    LIMIT/function/concat conventions apply.
    """
    text = _core(query.core, profile)
    if query.set_op is not None and query.set_query is not None:
        text = f"{text} {query.set_op} {unparse(query.set_query, profile)}"
    return text


def _ident(name: str, profile: Optional["DialectProfile"]) -> str:
    if profile is None:
        return name
    if _BARE_IDENT_RE.match(name) and name.upper() not in KEYWORDS:
        return name
    quote = profile.identifier_quote
    if quote == "[":
        return f"[{name}]"
    if quote == '"':
        escaped = name.replace('"', '""')
        return f'"{escaped}"'
    return f"{quote}{name}{quote}"


def _core(core: SelectCore, profile: Optional["DialectProfile"] = None) -> str:
    top_style = profile is not None and profile.limit_style == "top"
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    if top_style and core.limit is not None:
        parts.append(f"TOP {core.limit}")
    parts.append(", ".join(_select_item(item, profile) for item in core.items))
    if core.from_clause is not None:
        parts.append("FROM")
        parts.append(_from(core.from_clause, profile))
    if core.where is not None:
        parts.append("WHERE")
        parts.append(condition_text(core.where, profile))
    if core.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(expr_text(e, profile) for e in core.group_by))
    if core.having is not None:
        parts.append("HAVING")
        parts.append(condition_text(core.having, profile))
    if core.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order_item(o, profile) for o in core.order_by))
    if core.limit is not None and not top_style:
        parts.append(f"LIMIT {core.limit}")
    return " ".join(parts)


def _select_item(
    item: SelectItem, profile: Optional["DialectProfile"] = None
) -> str:
    text = expr_text(item.expr, profile)
    if item.alias:
        text = f"{text} AS {_ident(item.alias, profile)}"
    return text


def _order_item(
    item: OrderItem, profile: Optional["DialectProfile"] = None
) -> str:
    text = expr_text(item.expr, profile)
    if item.direction == "DESC":
        text = f"{text} DESC"
    return text


def _from(
    clause: FromClause, profile: Optional["DialectProfile"] = None
) -> str:
    parts = [_source(clause.source, profile)]
    for join in clause.joins:
        if join.using:
            columns = ", ".join(_ident(c, profile) for c in join.using)
            parts.append(
                f"{join.kind} {_source(join.source, profile)} USING ({columns})"
            )
        elif join.condition is None and join.kind == "JOIN":
            parts.append(f"JOIN {_source(join.source, profile)}")
        elif join.condition is None:
            parts.append(f"{join.kind} {_source(join.source, profile)}")
        else:
            parts.append(
                f"{join.kind} {_source(join.source, profile)} "
                f"ON {condition_text(join.condition, profile)}"
            )
    return " ".join(parts)


def _source(
    source: TableSource, profile: Optional["DialectProfile"] = None
) -> str:
    if isinstance(source, TableRef):
        if source.alias:
            return f"{_ident(source.name, profile)} AS {_ident(source.alias, profile)}"
        return _ident(source.name, profile)
    inner = unparse(source.query, profile)
    if source.alias:
        return f"({inner}) AS {_ident(source.alias, profile)}"
    return f"({inner})"


def expr_text(expr: Expr, profile: Optional["DialectProfile"] = None) -> str:
    """Render an expression."""
    if isinstance(expr, ColumnRef):
        column = expr.column if expr.column == "*" else _ident(expr.column, profile)
        if expr.table:
            return f"{_ident(expr.table, profile)}.{column}"
        return column
    if isinstance(expr, Literal):
        return literal_text(expr)
    if isinstance(expr, FuncCall):
        inner = expr_text(expr.arg, profile)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        name = profile.dialect_function(expr.name) if profile else expr.name
        return f"{name}({inner})"
    if isinstance(expr, BinaryExpr):
        left = _maybe_paren(expr.left, profile)
        right = _maybe_paren(expr.right, profile)
        if (
            expr.op == "||"
            and profile is not None
            and profile.concat_style == "function"
        ):
            return f"CONCAT({left}, {right})"
        return f"{left} {expr.op} {right}"
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(
                f"WHEN {condition_text(condition, profile)} "
                f"THEN {expr_text(value, profile)}"
            )
        if expr.else_ is not None:
            parts.append(f"ELSE {expr_text(expr.else_, profile)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"not an expression: {expr!r}")


def _maybe_paren(expr: Expr, profile: Optional["DialectProfile"] = None) -> str:
    if isinstance(expr, BinaryExpr):
        return f"({expr_text(expr, profile)})"
    return expr_text(expr, profile)


def literal_text(literal: Literal) -> str:
    """Render a literal with SQL quoting."""
    if literal.kind == "string":
        escaped = literal.value.replace("'", "''")
        return f"'{escaped}'"
    if literal.kind == "null":
        return "NULL"
    return literal.value


def _operand(
    value: Union[Expr, Query], profile: Optional["DialectProfile"] = None
) -> str:
    if isinstance(value, Query):
        return f"({unparse(value, profile)})"
    return expr_text(value, profile)


def condition_text(
    condition: Condition, profile: Optional["DialectProfile"] = None
) -> str:
    """Render a condition tree."""
    if isinstance(condition, Comparison):
        return (
            f"{expr_text(condition.left, profile)} {condition.op} "
            f"{_operand(condition.right, profile)}"
        )
    if isinstance(condition, InCondition):
        if isinstance(condition.values, Query):
            values = unparse(condition.values, profile)
        else:
            values = ", ".join(literal_text(v) for v in condition.values)
        op = "NOT IN" if condition.negated else "IN"
        return f"{expr_text(condition.expr, profile)} {op} ({values})"
    if isinstance(condition, LikeCondition):
        op = "NOT LIKE" if condition.negated else "LIKE"
        return (
            f"{expr_text(condition.expr, profile)} {op} "
            f"{literal_text(condition.pattern)}"
        )
    if isinstance(condition, BetweenCondition):
        op = "NOT BETWEEN" if condition.negated else "BETWEEN"
        return (
            f"{expr_text(condition.expr, profile)} {op} "
            f"{_operand(condition.low, profile)} AND "
            f"{_operand(condition.high, profile)}"
        )
    if isinstance(condition, IsNullCondition):
        op = "IS NOT NULL" if condition.negated else "IS NULL"
        return f"{expr_text(condition.expr, profile)} {op}"
    if isinstance(condition, ExistsCondition):
        prefix = "NOT EXISTS" if condition.negated else "EXISTS"
        return f"{prefix} ({unparse(condition.query, profile)})"
    if isinstance(condition, NotCondition):
        return f"NOT ({condition_text(condition.operand, profile)})"
    if isinstance(condition, AndCondition):
        return " AND ".join(_group(op, profile) for op in condition.operands)
    if isinstance(condition, OrCondition):
        return " OR ".join(_group(op, profile) for op in condition.operands)
    raise TypeError(f"not a condition: {condition!r}")


def _group(
    condition: Condition, profile: Optional["DialectProfile"] = None
) -> str:
    if isinstance(condition, (AndCondition, OrCondition)):
        return f"({condition_text(condition, profile)})"
    return condition_text(condition, profile)
