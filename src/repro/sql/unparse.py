"""Render an AST back to SQL text.

``parse(unparse(q)) == q`` holds structurally for every query the parser
accepts (property-tested in ``tests/sql/test_roundtrip.py``).  The output is
valid SQLite SQL, which is what the execution backend runs.
"""

from __future__ import annotations

from typing import Union

from .ast_nodes import (
    AndCondition,
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    LikeCondition,
    Literal,
    NotCondition,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    TableRef,
    TableSource,
)


def unparse(query: Query) -> str:
    """Render a query AST as a SQL string."""
    text = _core(query.core)
    if query.set_op is not None and query.set_query is not None:
        text = f"{text} {query.set_op} {unparse(query.set_query)}"
    return text


def _core(core: SelectCore) -> str:
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in core.items))
    if core.from_clause is not None:
        parts.append("FROM")
        parts.append(_from(core.from_clause))
    if core.where is not None:
        parts.append("WHERE")
        parts.append(condition_text(core.where))
    if core.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(expr_text(e) for e in core.group_by))
    if core.having is not None:
        parts.append("HAVING")
        parts.append(condition_text(core.having))
    if core.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order_item(o) for o in core.order_by))
    if core.limit is not None:
        parts.append(f"LIMIT {core.limit}")
    return " ".join(parts)


def _select_item(item: SelectItem) -> str:
    text = expr_text(item.expr)
    if item.alias:
        text = f"{text} AS {item.alias}"
    return text


def _order_item(item: OrderItem) -> str:
    text = expr_text(item.expr)
    if item.direction == "DESC":
        text = f"{text} DESC"
    return text


def _from(clause: FromClause) -> str:
    parts = [_source(clause.source)]
    for join in clause.joins:
        if join.using:
            columns = ", ".join(join.using)
            parts.append(f"{join.kind} {_source(join.source)} USING ({columns})")
        elif join.condition is None and join.kind == "JOIN":
            parts.append(f"JOIN {_source(join.source)}")
        elif join.condition is None:
            parts.append(f"{join.kind} {_source(join.source)}")
        else:
            parts.append(
                f"{join.kind} {_source(join.source)} ON {condition_text(join.condition)}"
            )
    return " ".join(parts)


def _source(source: TableSource) -> str:
    if isinstance(source, TableRef):
        if source.alias:
            return f"{source.name} AS {source.alias}"
        return source.name
    inner = unparse(source.query)
    if source.alias:
        return f"({inner}) AS {source.alias}"
    return f"({inner})"


def expr_text(expr: Expr) -> str:
    """Render an expression."""
    if isinstance(expr, ColumnRef):
        if expr.table:
            return f"{expr.table}.{expr.column}"
        return expr.column
    if isinstance(expr, Literal):
        return literal_text(expr)
    if isinstance(expr, FuncCall):
        inner = expr_text(expr.arg)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, BinaryExpr):
        left = _maybe_paren(expr.left)
        right = _maybe_paren(expr.right)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(f"WHEN {condition_text(condition)} THEN {expr_text(value)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {expr_text(expr.else_)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"not an expression: {expr!r}")


def _maybe_paren(expr: Expr) -> str:
    if isinstance(expr, BinaryExpr):
        return f"({expr_text(expr)})"
    return expr_text(expr)


def literal_text(literal: Literal) -> str:
    """Render a literal with SQL quoting."""
    if literal.kind == "string":
        escaped = literal.value.replace("'", "''")
        return f"'{escaped}'"
    if literal.kind == "null":
        return "NULL"
    return literal.value


def _operand(value: Union[Expr, Query]) -> str:
    if isinstance(value, Query):
        return f"({unparse(value)})"
    return expr_text(value)


def condition_text(condition: Condition) -> str:
    """Render a condition tree."""
    if isinstance(condition, Comparison):
        return f"{expr_text(condition.left)} {condition.op} {_operand(condition.right)}"
    if isinstance(condition, InCondition):
        if isinstance(condition.values, Query):
            values = unparse(condition.values)
        else:
            values = ", ".join(literal_text(v) for v in condition.values)
        op = "NOT IN" if condition.negated else "IN"
        return f"{expr_text(condition.expr)} {op} ({values})"
    if isinstance(condition, LikeCondition):
        op = "NOT LIKE" if condition.negated else "LIKE"
        return f"{expr_text(condition.expr)} {op} {literal_text(condition.pattern)}"
    if isinstance(condition, BetweenCondition):
        op = "NOT BETWEEN" if condition.negated else "BETWEEN"
        return (
            f"{expr_text(condition.expr)} {op} "
            f"{_operand(condition.low)} AND {_operand(condition.high)}"
        )
    if isinstance(condition, IsNullCondition):
        op = "IS NOT NULL" if condition.negated else "IS NULL"
        return f"{expr_text(condition.expr)} {op}"
    if isinstance(condition, ExistsCondition):
        prefix = "NOT EXISTS" if condition.negated else "EXISTS"
        return f"{prefix} ({unparse(condition.query)})"
    if isinstance(condition, NotCondition):
        return f"NOT ({condition_text(condition.operand)})"
    if isinstance(condition, AndCondition):
        return " AND ".join(_group(op) for op in condition.operands)
    if isinstance(condition, OrCondition):
        return " OR ".join(_group(op) for op in condition.operands)
    raise TypeError(f"not a condition: {condition!r}")


def _group(condition: Condition) -> str:
    if isinstance(condition, (AndCondition, OrCondition)):
        return f"({condition_text(condition)})"
    return condition_text(condition)
