"""SQL tokenizer for the Spider SQL subset.

Produces a flat list of typed :class:`Token` objects.  The tokenizer is
shared by the parser, the skeleton extractor and the token-efficiency
accounting, so it is deliberately strict: any character it does not
understand raises :class:`~repro.errors.SQLSyntaxError` rather than being
silently skipped.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import SQLSyntaxError

#: Keywords of the Spider SQL subset.  Matching is case-insensitive; the
#: canonical (upper-case) spelling is stored in :attr:`Token.value`.
KEYWORDS = frozenset(
    """SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT JOIN INNER LEFT RIGHT
    OUTER ON USING AS AND OR NOT IN LIKE BETWEEN EXISTS IS NULL DISTINCT UNION
    INTERSECT EXCEPT ASC DESC COUNT SUM AVG MIN MAX CAST ABS ROUND LENGTH
    CASE WHEN THEN ELSE END ALL""".split()
)

#: Aggregate function names (subset of KEYWORDS used as function heads).
AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

#: Scalar function names accepted in expressions.
SCALAR_FUNCTIONS = frozenset({"ABS", "ROUND", "LENGTH", "CAST"})


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"          # comparison and arithmetic operators
    PUNCT = "punct"    # ( ) , . ; *
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: lexical category.
        value: canonical text — keywords upper-cased, identifiers as written
            (quotes stripped), strings without their surrounding quotes.
        position: character offset in the source text.
    """

    type: TokenType
    value: str
    position: int = 0

    def is_keyword(self, *names: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.value}:{self.value}"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<quoted_ident>`[^`]+`|\[[^\]]+\])
  | (?P<op><>|!=|>=|<=|=|<|>|\|\||[+\-*/%])
  | (?P<punct>[(),.;])
    """,
    re.VERBOSE,
)

# Double-quoted text is an identifier in standard SQL but Spider corpora use
# it for string literals; we follow Spider and treat both quote styles as
# string literals.  Backticks/brackets are always identifiers.


def tokenize(sql: str) -> List[Token]:
    """Tokenize SQL text into a list ending with an EOF token.

    Raises:
        SQLSyntaxError: on any character sequence outside the grammar.
    """
    tokens: List[Token] = []
    pos = 0
    length = len(sql)
    while pos < length:
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {sql[pos]!r} at offset {pos}",
                sql=sql,
                position=pos,
            )
        start = pos
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "string":
            quote = text[0]
            body = text[1:-1].replace(quote * 2, quote)
            tokens.append(Token(TokenType.STRING, body, start))
        elif kind == "number":
            tokens.append(Token(TokenType.NUMBER, text, start))
        elif kind == "word":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, text, start))
        elif kind == "quoted_ident":
            tokens.append(Token(TokenType.IDENT, text[1:-1], start))
        elif kind == "op":
            canonical = "!=" if text == "<>" else text
            tokens.append(Token(TokenType.OP, canonical, start))
        elif kind == "punct":
            if text == "*":
                tokens.append(Token(TokenType.PUNCT, "*", start))
            else:
                tokens.append(Token(TokenType.PUNCT, text, start))
        else:  # pragma: no cover - regex groups are exhaustive
            raise SQLSyntaxError(f"unhandled token kind {kind}", sql=sql)
    # '*' is matched by the op group; re-tag it as punctuation so the parser
    # can treat SELECT * and COUNT(*) uniformly.
    tokens = [
        Token(TokenType.PUNCT, "*", t.position)
        if t.type is TokenType.OP and t.value == "*"
        else t
        for t in tokens
    ]
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def iter_significant(tokens: List[Token]) -> Iterator[Token]:
    """Yield all tokens except the trailing EOF."""
    for token in tokens:
        if token.type is TokenType.EOF:
            return
        yield token
