"""Spider-style query hardness classification.

Re-implements the official Spider evaluation rubric (easy / medium / hard /
extra) on our AST.  The rubric counts three component groups:

* **component-1**: WHERE present, GROUP BY keys, ORDER BY present, LIMIT,
  joins (FROM with more than one table), OR, LIKE;
* **component-2**: nesting — set operators and subqueries;
* **others**: number of aggregates > 1, select columns > 1, WHERE
  conditions > 1, GROUP BY keys > 1.

and buckets exactly as the official ``evaluation.py`` does.
"""

from __future__ import annotations

from typing import Optional, Union

from .ast_nodes import (
    Comparison,
    FuncCall,
    LikeCondition,
    OrCondition,
    Query,
    iter_conditions,
    iter_subqueries,
)
from .parser import parse

HARDNESS_LEVELS = ("easy", "medium", "hard", "extra")


def count_component1(query: Query) -> int:
    """WHERE / GROUP BY / ORDER BY / LIMIT / JOIN / OR / LIKE occurrences."""
    count = 0
    for _, core in query.flatten_set_ops():
        if core.where is not None:
            count += 1
        count += len(core.group_by)
        if core.order_by:
            count += 1
        if core.limit is not None:
            count += 1
        if core.from_clause is not None and len(core.from_clause.sources()) > 1:
            count += len(core.from_clause.sources()) - 1
        for cond in (core.where, core.having):
            count += _count_or(cond)
            count += _count_like(cond)
    return count


def _count_or(condition: Optional[Condition]) -> int:
    if condition is None:
        return 0
    total = 0
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, OrCondition):
            total += len(node.operands) - 1
            stack.extend(node.operands)
        elif hasattr(node, "operands"):
            stack.extend(node.operands)
        elif hasattr(node, "operand"):
            stack.append(node.operand)
    return total


def _count_like(condition: Optional[Condition]) -> int:
    return sum(
        1 for leaf in iter_conditions(condition) if isinstance(leaf, LikeCondition)
    )


def count_component2(query: Query) -> int:
    """Set operations plus nested subqueries."""
    count = 0
    node = query
    while node.set_op is not None and node.set_query is not None:
        count += 1
        node = node.set_query
    count += sum(1 for _ in iter_subqueries(query))
    return count


def count_others(query: Query) -> int:
    """Secondary complexity: >1 aggregates / select columns / conditions / keys."""
    agg_count = 0
    select_count = 0
    where_count = 0
    group_count = 0
    for _, core in query.flatten_set_ops():
        select_count += len(core.items)
        for item in core.items:
            if isinstance(item.expr, FuncCall):
                agg_count += 1
        for order in core.order_by:
            if isinstance(order.expr, FuncCall):
                agg_count += 1
        for cond in (core.where, core.having):
            for leaf in iter_conditions(cond):
                where_count += 1
                if isinstance(leaf, Comparison) and isinstance(leaf.left, FuncCall):
                    agg_count += 1
        group_count += len(core.group_by)

    count = 0
    if agg_count > 1:
        count += 1
    if select_count > 1:
        count += 1
    if where_count > 1:
        count += 1
    if group_count > 1:
        count += 1
    return count


def hardness(query: Union[str, Query]) -> str:
    """Classify a query as ``easy`` / ``medium`` / ``hard`` / ``extra``.

    Follows the official Spider bucketing rules.
    """
    if isinstance(query, str):
        query = parse(query)
    comp1 = count_component1(query)
    comp2 = count_component2(query)
    others = count_others(query)

    if comp1 <= 1 and others == 0 and comp2 == 0:
        return "easy"
    if (others <= 2 and comp1 <= 1 and comp2 == 0) or (
        comp1 <= 2 and others < 2 and comp2 == 0
    ):
        return "medium"
    if (
        (others > 2 and comp1 <= 2 and comp2 == 0)
        or (2 < comp1 <= 3 and others <= 2 and comp2 == 0)
        or (comp1 <= 1 and others == 0 and comp2 <= 1)
    ):
        return "hard"
    return "extra"
