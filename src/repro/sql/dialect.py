"""SQL dialect profiles.

A :class:`DialectProfile` is a small declarative description of how a SQL
flavor differs from the reference dialect (SQLite, the dialect the paper's
EX metric is defined against).  Profiles drive three things:

* the transpiler (:mod:`repro.sql.transpile`) — normalising dialect text to
  the reference grammar and rendering an AST back out in a target flavor;
* the analyzer (:mod:`repro.analysis`) — dialect-conditional rules such as
  "double-quoted text is an identifier, not a string literal";
* the execution backends (:mod:`repro.db.backends`) — emulated backends
  pick their profile up from this registry.

Profiles are intentionally coarse: they capture the semantic differences
that flip a predicted query between correct and broken (quoting, LIMIT
forms, function spellings, boolean literals, string concatenation), not a
full grammar per engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ..errors import DialectError

#: Name of the reference dialect — the flavor the parser/unparser and the
#: gold corpus are written in, and the one SQLite executes natively.
REFERENCE_DIALECT = "sqlite"


@dataclass(frozen=True)
class DialectProfile:
    """Declarative description of one SQL flavor.

    Attributes:
        name: registry key, e.g. ``"postgres"``.
        identifier_quote: quote character used when an identifier needs
            quoting (``"`` for standard SQL, `````` for MySQL/SQLite
            emulation, ``[`` for T-SQL brackets).
        double_quote_means: what double-quoted text denotes — ``"string"``
            (Spider/SQLite convention) or ``"identifier"`` (standard SQL).
        limit_style: row-limiting syntax — ``"limit"`` (``LIMIT n``) or
            ``"top"`` (``SELECT TOP n ...``).
        keyword_booleans: whether ``TRUE``/``FALSE`` keyword literals are
            idiomatic (normalised to ``1``/``0`` on the reference dialect).
        concat_style: string concatenation — ``"operator"`` (``||``) or
            ``"function"`` (``CONCAT(a, b)``).
        function_names: canonical (reference) function name → this
            dialect's spelling, e.g. ``{"LENGTH": "CHAR_LENGTH"}``.
        notes: free-form caveats, surfaced in docs/debug output.
    """

    name: str
    identifier_quote: str = '"'
    double_quote_means: str = "string"
    limit_style: str = "limit"
    keyword_booleans: bool = False
    concat_style: str = "operator"
    function_names: Mapping[str, str] = field(default_factory=dict)
    notes: str = ""

    @property
    def is_reference(self) -> bool:
        return self.name == REFERENCE_DIALECT

    def dialect_function(self, canonical: str) -> str:
        """This dialect's spelling of a canonical function name."""
        return self.function_names.get(canonical.upper(), canonical)

    def canonical_function(self, name: str) -> str:
        """Canonical spelling for one of this dialect's function names."""
        upper = name.upper()
        for canonical, spelled in self.function_names.items():
            if spelled.upper() == upper:
                return canonical
        return name

    def fingerprint_token(self) -> str:
        """Stable token folded into cache/journal keys."""
        return f"dialect:{self.name}"


_REGISTRY: Dict[str, DialectProfile] = {}


def register_dialect(profile: DialectProfile) -> DialectProfile:
    """Register a profile under its name (last registration wins)."""
    _REGISTRY[profile.name] = profile
    return profile


def get_dialect(name: str) -> DialectProfile:
    """Look up a registered profile.

    Raises:
        DialectError: if ``name`` is not registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DialectError(
            f"unknown SQL dialect {name!r} (known: {known})"
        ) from None


def dialect_names() -> List[str]:
    """Registered profile names, sorted."""
    return sorted(_REGISTRY)


def reference_dialect() -> DialectProfile:
    """The reference (SQLite) profile."""
    return _REGISTRY[REFERENCE_DIALECT]


# -- built-in profiles --------------------------------------------------------

#: Reference dialect: Spider-convention SQLite.  Double-quoted text is a
#: string literal (the corpus convention); identifiers that need quoting are
#: rendered with backticks, which SQLite accepts, because double quotes fall
#: back to string literals for unknown identifiers (the famous misfeature).
SQLITE = register_dialect(DialectProfile(
    name="sqlite",
    identifier_quote="`",
    double_quote_means="string",
    limit_style="limit",
    keyword_booleans=False,
    concat_style="operator",
    notes="reference dialect; Spider treats double quotes as strings",
))

DUCKDB = register_dialect(DialectProfile(
    name="duckdb",
    identifier_quote='"',
    double_quote_means="identifier",
    limit_style="limit",
    keyword_booleans=True,
    concat_style="operator",
    notes="standard-SQL quoting; executes natively when duckdb is installed",
))

POSTGRES = register_dialect(DialectProfile(
    name="postgres",
    identifier_quote='"',
    double_quote_means="identifier",
    limit_style="limit",
    keyword_booleans=True,
    concat_style="operator",
    notes="emulated on SQLite after transpilation",
))

MYSQL = register_dialect(DialectProfile(
    name="mysql",
    identifier_quote="`",
    double_quote_means="string",
    limit_style="limit",
    keyword_booleans=True,
    concat_style="function",
    function_names={"LENGTH": "CHAR_LENGTH"},
    notes="|| is logical OR on stock MySQL, so concat renders as CONCAT()",
))

TSQL = register_dialect(DialectProfile(
    name="tsql",
    identifier_quote="[",
    double_quote_means="identifier",
    limit_style="top",
    keyword_booleans=False,
    concat_style="function",
    function_names={"LENGTH": "LEN"},
    notes="SELECT TOP n instead of LIMIT; bracket-quoted identifiers",
))
