"""Canonical logical form for parsed SQL queries.

Two queries that differ only in *spelling* — alias names, predicate
order, ``NOT`` placement, ``BETWEEN`` vs explicit bounds, folded
arithmetic — denote the same logical query.  :func:`canonicalize`
rewrites a parsed :class:`~repro.sql.ast_nodes.Query` into one
representative of that spelling class so structural equality (and the
unparsed text, via :func:`canonical_fingerprint`) can serve as a cheap
equivalence witness.

The transformations are *sound under SQLite's three-valued logic*: for
every database instance the canonical query returns results that
compare equal under :func:`repro.db.execution.results_match` (multiset
comparison without ORDER BY, sequence comparison with it).  Rewrites
that could change physical row order are therefore gated — FROM
sources are only reordered when the query has no bare ``*``
projection, no ORDER BY, and no LIMIT, and set-operation arms are only
sorted for uniform ``UNION``/``INTERSECT`` chains.

Applied rewrites:

* alias erasure via :func:`repro.sql.normalize.resolve_aliases`;
* double negation and De Morgan pushed to the leaves
  (``NOT (a AND b)`` → ``NOT a OR NOT b``, ``NOT x < y`` → ``x >= y``);
* AND/OR flattening, idempotent deduplication, and commutative operand
  ordering (predicates sort by their rendered text);
* comparison orientation (literals move to the right-hand side,
  symmetric operands order by key) and commutative ``+``/``*``
  operand ordering with integer constant folding;
* ``BETWEEN`` expansion into explicit bounds, single-element ``IN``
  into equality, ``IN`` value lists sorted and deduplicated;
* inner-join ``ON`` conditions merged into WHERE (and join sources
  sorted when provably order-insensitive);
* GROUP BY key ordering, unreferenced top-level SELECT aliases
  dropped, function names upper-cased;
* with a schema: strict integer bounds become inclusive
  (``age > 5`` → ``age >= 6`` on INTEGER columns) and ``COUNT(pk)``
  becomes ``COUNT(*)`` over the primary key of a sole-table FROM —
  both assume declared columns hold values of their declared type.

This module is also the home of the *component key* scheme the Spider
exact-match evaluator uses (:func:`expr_key`/:func:`condition_keys`/
:func:`query_key`): exact-match masks literal values, equivalence does
not, and both share one ordering so they can never drift apart.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..schema.model import Column, DatabaseSchema
from .ast_nodes import (
    AndCondition,
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    Join,
    LikeCondition,
    Literal,
    NotCondition,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    SubqueryTable,
    TableRef,
    TableSource,
    iter_conditions,
)
from .normalize import resolve_aliases
from .parser import parse, try_parse
from .unparse import condition_text, unparse

_VALUE_MASK = "value"

#: ``a op b`` ≡ ``b mirror(op) a`` for every comparison operator.
_MIRROR = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}

#: ``NOT (a op b)`` ≡ ``a negate(op) b`` — valid in three-valued logic
#: because both sides evaluate to NULL on NULL operands.
_NEGATE = {"=": "!=", "!=": "=", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}


# ---------------------------------------------------------------------------
# Component keys (shared by exact-match and canonical ordering)
# ---------------------------------------------------------------------------


def expr_key(expr: Union[Expr, Query], mask_values: bool = True) -> str:
    """Canonical string key of an expression.

    With ``mask_values`` (the Spider exact-match convention) every
    literal collapses to ``"value"``; without it literals keep their
    kind-tagged spelling so distinct constants get distinct keys.
    """
    if isinstance(expr, Query):
        return f"({query_key(expr, mask_values)})"
    if isinstance(expr, ColumnRef):
        return expr.key()
    if isinstance(expr, Literal):
        if mask_values:
            return _VALUE_MASK
        return f"{expr.kind}:{expr.value}"
    if isinstance(expr, FuncCall):
        distinct = "distinct " if expr.distinct else ""
        return (
            f"{expr.name.lower()}"
            f"({distinct}{expr_key(expr.arg, mask_values)})"
        )
    if isinstance(expr, BinaryExpr):
        return (
            f"{expr_key(expr.left, mask_values)}{expr.op}"
            f"{expr_key(expr.right, mask_values)}"
        )
    if isinstance(expr, CaseExpr):
        branches = ";".join(
            f"{_leaf_keys_of(cond, mask_values)}:{expr_key(value, mask_values)}"
            for cond, value in expr.whens
        )
        tail = expr_key(expr.else_, mask_values) if expr.else_ is not None else ""
        return f"case({branches})else({tail})"
    raise TypeError(f"not an expression: {expr!r}")


def _leaf_keys_of(condition: Condition, mask_values: bool) -> str:
    return "&".join(sorted(condition_keys(condition, mask_values)))


def condition_keys(
    condition: Optional[Condition], mask_values: bool = True
) -> FrozenSet[str]:
    """Set of leaf-predicate keys (AND/OR structure flattened, Spider-style)."""
    keys = []
    for leaf in iter_conditions(condition):
        keys.append(leaf_key(leaf, mask_values))
    return frozenset(keys)


def leaf_key(leaf: Condition, mask_values: bool = True) -> str:
    """Canonical string key of one condition leaf."""
    if isinstance(leaf, Comparison):
        return (
            f"{expr_key(leaf.left, mask_values)} {leaf.op} "
            f"{expr_key(leaf.right, mask_values)}"
        )
    if isinstance(leaf, InCondition):
        op = "not in" if leaf.negated else "in"
        if isinstance(leaf.values, Query):
            return (
                f"{expr_key(leaf.expr, mask_values)} {op} "
                f"({query_key(leaf.values, mask_values)})"
            )
        if mask_values:
            return f"{expr_key(leaf.expr, mask_values)} {op} {_VALUE_MASK}"
        values = ",".join(sorted(expr_key(v, False) for v in leaf.values))
        return f"{expr_key(leaf.expr, False)} {op} ({values})"
    if isinstance(leaf, LikeCondition):
        op = "not like" if leaf.negated else "like"
        pattern = _VALUE_MASK if mask_values else expr_key(leaf.pattern, False)
        return f"{expr_key(leaf.expr, mask_values)} {op} {pattern}"
    if isinstance(leaf, BetweenCondition):
        op = "not between" if leaf.negated else "between"
        if mask_values:
            return f"{expr_key(leaf.expr, mask_values)} {op}"
        return (
            f"{expr_key(leaf.expr, False)} {op} "
            f"{expr_key(leaf.low, False)} and {expr_key(leaf.high, False)}"
        )
    if isinstance(leaf, IsNullCondition):
        op = "is not null" if leaf.negated else "is null"
        return f"{expr_key(leaf.expr, mask_values)} {op}"
    if isinstance(leaf, ExistsCondition):
        op = "not exists" if leaf.negated else "exists"
        return f"{op} ({query_key(leaf.query, mask_values)})"
    if isinstance(leaf, NotCondition):
        return f"not {leaf_key(leaf.operand, mask_values)}"
    raise TypeError(f"not a condition leaf: {leaf!r}")


def _select_key(
    core: SelectCore, mask_values: bool
) -> FrozenSet[Tuple[str, bool]]:
    return frozenset(
        (expr_key(item.expr, mask_values), core.distinct) for item in core.items
    )


def _from_key(core: SelectCore) -> FrozenSet[str]:
    return frozenset(
        core.from_clause.table_names() if core.from_clause else ()
    )


def _group_key(core: SelectCore, mask_values: bool) -> FrozenSet[str]:
    return frozenset(expr_key(e, mask_values) for e in core.group_by)


def _order_key(
    core: SelectCore, mask_values: bool
) -> Tuple[Tuple[str, str], ...]:
    return tuple(
        (expr_key(o.expr, mask_values), o.direction.lower())
        for o in core.order_by
    )


def core_components(
    core: SelectCore, mask_values: bool = True
) -> Dict[str, object]:
    """Per-clause comparison keys of one SELECT core (Spider components)."""
    return {
        "select": _select_key(core, mask_values),
        "from": _from_key(core),
        "where": condition_keys(core.where, mask_values),
        "group": _group_key(core, mask_values),
        "having": condition_keys(core.having, mask_values),
        "order": _order_key(core, mask_values),
        "limit": core.limit is not None,
        "set_op": None,  # filled at query level
    }


def query_key(query: Query, mask_values: bool = True) -> str:
    """Canonical key of a whole query (used for nested comparison)."""
    parts = []
    for op, core in query.flatten_set_ops():
        parts.append(
            f"{op or ''}|{sorted(_select_key(core, mask_values))}|"
            f"{sorted(_from_key(core))}|"
            f"{sorted(condition_keys(core.where, mask_values))}|"
            f"{sorted(_group_key(core, mask_values))}|"
            f"{sorted(condition_keys(core.having, mask_values))}|"
            f"{_order_key(core, mask_values)}|{core.limit is not None}"
        )
    return "&&".join(parts)


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


class _Context:
    """Schema-resolution context for one SELECT core."""

    def __init__(
        self, schema: Optional[DatabaseSchema], tables: Tuple[str, ...]
    ) -> None:
        self.schema = schema
        self.tables = tables
        self.sole_pk: Optional[str] = None
        if schema is not None and len(tables) == 1 and schema.has_table(tables[0]):
            pk = schema.table(tables[0]).primary_key
            if pk is not None:
                self.sole_pk = pk.lower()

    def column(self, ref: ColumnRef) -> Optional[Column]:
        """Resolve a reference to its schema column, or ``None``."""
        if self.schema is None or ref.column == "*":
            return None
        if ref.table:
            if not self.schema.has_table(ref.table):
                return None
            table = self.schema.table(ref.table)
            if not table.has_column(ref.column):
                return None
            return table.column(ref.column)
        hits = [
            name
            for name in self.tables
            if self.schema.has_table(name)
            and self.schema.table(name).has_column(ref.column)
        ]
        if len(hits) != 1:
            return None
        return self.schema.table(hits[0]).column(ref.column)


_NO_CONTEXT = _Context(None, ())


def canonicalize(
    query: Union[str, Query], schema: Optional[DatabaseSchema] = None
) -> Query:
    """Rewrite ``query`` into its canonical logical form.

    Raises:
        SQLSyntaxError: when ``query`` is a string that does not parse.
    """
    if isinstance(query, str):
        query = parse(query)
    return _canon_query(resolve_aliases(query), schema, drop_aliases=True)


def canonicalize_condition(
    condition: Optional[Condition],
    schema: Optional[DatabaseSchema] = None,
    tables: Tuple[str, ...] = (),
) -> Optional[Condition]:
    """Canonicalize one condition tree outside any query context."""
    return _canon_condition(condition, _Context(schema, tables))


def canonical_fingerprint(
    sql: Union[str, Query], schema: Optional[DatabaseSchema] = None
) -> Optional[str]:
    """Rendered canonical form — equal fingerprints ⇒ equivalent queries.

    Returns ``None`` when the SQL does not parse.  Canonicalization is
    pure AST surgery and must never take an evaluation down with it, so
    any internal failure also degrades to ``None`` (the caller falls
    back to treating the query as its own class).
    """
    query = try_parse(sql) if isinstance(sql, str) else sql
    if query is None:
        return None
    try:
        return unparse(canonicalize(query, schema))
    except Exception:  # defensive: never break eval on a rewrite bug
        return None


def _canon_query(
    query: Query, schema: Optional[DatabaseSchema], drop_aliases: bool
) -> Query:
    parts = query.flatten_set_ops()
    cores = [_canon_core(core, schema, drop_aliases) for _, core in parts]
    ops = [op for op, _ in parts[1:]]
    sortable = (
        bool(ops)
        and all(op == ops[0] for op in ops)
        and ops[0] in ("UNION", "INTERSECT")
        and not any(c.order_by or c.limit is not None for c in cores)
    )
    if sortable:
        # Set semantics make arm order irrelevant; sort for a stable form.
        cores.sort(key=lambda c: unparse(Query(core=c)))
    node = Query(core=cores[-1])
    for index in range(len(ops) - 1, -1, -1):
        node = Query(core=cores[index], set_op=ops[index], set_query=node)
    return node


def _has_bare_star(core: SelectCore) -> bool:
    return any(
        isinstance(item.expr, ColumnRef)
        and item.expr.column == "*"
        and item.expr.table is None
        for item in core.items
    )


def _source_key(source: TableSource) -> str:
    if isinstance(source, TableRef):
        return f"t:{source.name.lower()}"
    return f"q:{unparse(source.query)}:{source.alias or ''}"


def _canon_source(
    source: TableSource, schema: Optional[DatabaseSchema]
) -> TableSource:
    if isinstance(source, SubqueryTable):
        return SubqueryTable(
            query=_canon_query(source.query, schema, drop_aliases=False),
            alias=source.alias,
        )
    return source


def _canon_core(
    core: SelectCore, schema: Optional[DatabaseSchema], drop_aliases: bool
) -> SelectCore:
    from_clause = core.from_clause
    where = core.where
    if from_clause is not None:
        tables = tuple(name for name in from_clause.table_names())
        ctx = _Context(schema, tables)
        first = _canon_source(from_clause.source, schema)
        collapsible = all(
            join.kind == "JOIN" and not join.using
            for join in from_clause.joins
        )
        joins: List[Join] = []
        extracted: List[Condition] = []
        for join in from_clause.joins:
            source = _canon_source(join.source, schema)
            condition = join.condition
            if collapsible and condition is not None:
                # Inner-join ON predicates filter exactly like WHERE.
                extracted.append(condition)
                condition = None
            else:
                condition = _canon_condition(condition, ctx)
            joins.append(
                Join(
                    source=source,
                    condition=condition,
                    kind=join.kind,
                    using=join.using,
                )
            )
        if extracted:
            base = (where,) if where is not None else ()
            where = AndCondition(operands=base + tuple(extracted))
        if (
            collapsible
            and joins
            and not _has_bare_star(core)
            and not core.order_by
            and core.limit is None
        ):
            # Pure inner joins with no order/limit sensitivity: source
            # order cannot affect the (multiset-compared) result.
            sources = sorted(
                [first] + [join.source for join in joins], key=_source_key
            )
            first = sources[0]
            joins = [Join(source=s) for s in sources[1:]]
        from_clause = FromClause(source=first, joins=tuple(joins))
    else:
        ctx = _Context(schema, ())

    where = _canon_condition(where, ctx)
    having = _canon_condition(core.having, ctx)

    group_by: List[Expr] = []
    for expr in core.group_by:
        canon = _canon_expr(expr, ctx)
        if canon not in group_by:  # grouping keys are a set
            group_by.append(canon)
    group_by.sort(key=lambda e: expr_key(e, False))

    order_by = tuple(
        OrderItem(expr=_canon_expr(o.expr, ctx), direction=o.direction.upper())
        for o in core.order_by
    )

    referenced = _referenced_names(where, having, group_by, order_by)
    items = []
    for item in core.items:
        alias = item.alias
        if (
            drop_aliases
            and alias is not None
            and alias.lower() not in referenced
        ):
            alias = None
        items.append(SelectItem(expr=_canon_expr(item.expr, ctx), alias=alias))

    return SelectCore(
        items=tuple(items),
        from_clause=from_clause,
        where=where,
        group_by=tuple(group_by),
        having=having,
        order_by=order_by,
        limit=core.limit,
        distinct=core.distinct,
    )


def _referenced_names(
    where: Optional[Condition],
    having: Optional[Condition],
    group_by: List[Expr],
    order_by: Tuple[OrderItem, ...],
) -> FrozenSet[str]:
    """Unqualified column names used outside the projection — a SELECT
    alias matching one of these may be load-bearing and must be kept."""
    names: List[str] = []

    def visit_expr(expr: Union[Expr, Query]) -> None:
        if isinstance(expr, ColumnRef):
            if expr.table is None:
                names.append(expr.column.lower())
        elif isinstance(expr, FuncCall):
            visit_expr(expr.arg)
        elif isinstance(expr, BinaryExpr):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, CaseExpr):
            for cond, value in expr.whens:
                visit_cond(cond)
                visit_expr(value)
            if expr.else_ is not None:
                visit_expr(expr.else_)

    def visit_cond(condition: Optional[Condition]) -> None:
        for leaf in iter_conditions(condition):
            for attr in ("left", "right", "expr", "low", "high", "pattern"):
                value = getattr(leaf, attr, None)
                if value is not None and not isinstance(value, Query):
                    visit_expr(value)

    visit_cond(where)
    visit_cond(having)
    for expr in group_by:
        visit_expr(expr)
    for item in order_by:
        visit_expr(item.expr)
    return frozenset(names)


# -- expressions ------------------------------------------------------------


def _canon_expr(expr: Expr, ctx: _Context) -> Expr:
    if isinstance(expr, (ColumnRef, Literal)):
        return expr
    if isinstance(expr, FuncCall):
        arg = _canon_expr(expr.arg, ctx)
        name = expr.name.upper()
        if (
            name == "COUNT"
            and not expr.distinct
            and ctx.sole_pk is not None
            and isinstance(arg, ColumnRef)
            and arg.table is None
            and arg.column.lower() == ctx.sole_pk
        ):
            # Primary keys are non-NULL, so COUNT(pk) counts every row.
            arg = ColumnRef(column="*")
        return FuncCall(name=name, arg=arg, distinct=expr.distinct)
    if isinstance(expr, BinaryExpr):
        left = _canon_expr(expr.left, ctx)
        right = _canon_expr(expr.right, ctx)
        folded = _fold(expr.op, left, right)
        if folded is not None:
            return folded
        if expr.op in ("+", "*") and expr_key(right, False) < expr_key(left, False):
            left, right = right, left
        return BinaryExpr(op=expr.op, left=left, right=right)
    if isinstance(expr, CaseExpr):
        whens = tuple(
            (_require_condition(_canon_condition(cond, ctx)), _canon_expr(value, ctx))
            for cond, value in expr.whens
        )
        else_ = _canon_expr(expr.else_, ctx) if expr.else_ is not None else None
        return CaseExpr(whens=whens, else_=else_)
    raise TypeError(f"not an expression: {expr!r}")


def _require_condition(condition: Optional[Condition]) -> Condition:
    assert condition is not None  # CASE branches always carry a condition
    return condition


def _is_int_literal(expr: Expr) -> bool:
    return (
        isinstance(expr, Literal)
        and expr.kind == "number"
        and "." not in expr.value
    )


def _fold(op: str, left: Expr, right: Expr) -> Optional[Literal]:
    """Fold integer constant arithmetic (``+ - *`` only — SQLite's
    ``/`` truncates and ``%`` follows C semantics; float formatting is
    not round-trip safe, so neither is folded)."""
    if op not in ("+", "-", "*"):
        return None
    if not (_is_int_literal(left) and _is_int_literal(right)):
        return None
    assert isinstance(left, Literal) and isinstance(right, Literal)
    a, b = int(left.value), int(right.value)
    value = a + b if op == "+" else (a - b if op == "-" else a * b)
    return Literal(value=str(value), kind="number")


# -- conditions -------------------------------------------------------------


def _condition_sort_key(condition: Condition) -> str:
    return condition_text(condition)


def _canon_condition(
    condition: Optional[Condition], ctx: _Context, negate: bool = False
) -> Optional[Condition]:
    if condition is None:
        return None
    if isinstance(condition, NotCondition):
        return _canon_condition(condition.operand, ctx, not negate)
    if isinstance(condition, (AndCondition, OrCondition)):
        # De Morgan: negation swaps the connective and pushes inward.
        make_and = isinstance(condition, AndCondition) != negate
        cls = AndCondition if make_and else OrCondition
        flat: List[Condition] = []
        for operand in condition.operands:
            canon = _canon_condition(operand, ctx, negate)
            assert canon is not None
            if isinstance(canon, cls):
                flat.extend(canon.operands)
            else:
                flat.append(canon)
        unique: List[Condition] = []
        for operand in flat:  # AND/OR are idempotent
            if operand not in unique:
                unique.append(operand)
        unique.sort(key=_condition_sort_key)
        if len(unique) == 1:
            return unique[0]
        return cls(operands=tuple(unique))
    return _canon_leaf(condition, ctx, negate)


def _canon_leaf(leaf: Condition, ctx: _Context, negate: bool) -> Condition:
    if isinstance(leaf, Comparison):
        op = _NEGATE[leaf.op] if negate else leaf.op
        left = _canon_expr(leaf.left, ctx)
        if isinstance(leaf.right, Query):
            return Comparison(
                op=op,
                left=left,
                right=_canon_query(leaf.right, ctx.schema, drop_aliases=True),
            )
        right = _canon_expr(leaf.right, ctx)
        left, op, right = _orient(left, op, right)
        left, op, right = _integer_bounds(left, op, right, ctx)
        return Comparison(op=op, left=left, right=right)
    if isinstance(leaf, InCondition):
        negated = leaf.negated != negate
        expr = _canon_expr(leaf.expr, ctx)
        if isinstance(leaf.values, Query):
            return InCondition(
                expr=expr,
                values=_canon_query(leaf.values, ctx.schema, drop_aliases=True),
                negated=negated,
            )
        values: List[Literal] = []
        for value in leaf.values:
            if value not in values:
                values.append(value)
        values.sort(key=lambda v: (v.kind, v.value))
        if len(values) == 1:
            # x IN (v) ≡ x = v (both NULL out on NULL x).
            op = "!=" if negated else "="
            left, op, right = _orient(expr, op, values[0])
            return Comparison(op=op, left=left, right=right)
        return InCondition(expr=expr, values=tuple(values), negated=negated)
    if isinstance(leaf, LikeCondition):
        return LikeCondition(
            expr=_canon_expr(leaf.expr, ctx),
            pattern=leaf.pattern,
            negated=leaf.negated != negate,
        )
    if isinstance(leaf, BetweenCondition):
        negated = leaf.negated != negate
        if negated:
            built: Condition = OrCondition(
                operands=(
                    Comparison(op="<", left=leaf.expr, right=leaf.low),
                    Comparison(op=">", left=leaf.expr, right=leaf.high),
                )
            )
        else:
            built = AndCondition(
                operands=(
                    Comparison(op=">=", left=leaf.expr, right=leaf.low),
                    Comparison(op="<=", left=leaf.expr, right=leaf.high),
                )
            )
        canon = _canon_condition(built, ctx)
        assert canon is not None
        return canon
    if isinstance(leaf, IsNullCondition):
        return IsNullCondition(
            expr=_canon_expr(leaf.expr, ctx), negated=leaf.negated != negate
        )
    if isinstance(leaf, ExistsCondition):
        return ExistsCondition(
            query=_canon_query(leaf.query, ctx.schema, drop_aliases=True),
            negated=leaf.negated != negate,
        )
    raise TypeError(f"not a condition leaf: {leaf!r}")


def _orient(left: Expr, op: str, right: Expr) -> Tuple[Expr, str, Expr]:
    """Orient a comparison: literal on the right, symmetric operands in
    key order (``5 < age`` and ``age > 5`` meet at ``age > 5``)."""
    if isinstance(left, Literal) and not isinstance(right, Literal):
        return right, _MIRROR[op], left
    if (
        not isinstance(left, Literal)
        and not isinstance(right, Literal)
        and expr_key(right, False) < expr_key(left, False)
    ):
        return right, _MIRROR[op], left
    return left, op, right


def _integer_bounds(
    left: Expr, op: str, right: Expr, ctx: _Context
) -> Tuple[Expr, str, Expr]:
    """Make strict integer bounds inclusive: ``x > 5`` ≡ ``x >= 6`` when
    ``x`` is an INTEGER column (declared types hold by construction in
    the synthetic corpora)."""
    if op not in ("<", ">") or not isinstance(left, ColumnRef):
        return left, op, right
    if not _is_int_literal(right):
        return left, op, right
    column = ctx.column(left)
    if column is None or column.ctype != "number" or not column.is_integer:
        return left, op, right
    assert isinstance(right, Literal)
    value = int(right.value)
    if op == ">":
        return left, ">=", Literal(value=str(value + 1), kind="number")
    return left, "<=", Literal(value=str(value - 1), kind="number")
