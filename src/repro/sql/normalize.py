"""SQL normalisation: canonical text form and alias resolution.

Two capabilities used throughout the benchmark:

* :func:`resolve_aliases` rewrites ``T1.col`` style references to their base
  table names and strips table aliases, giving alias-insensitive ASTs (the
  exact-match evaluator compares those).
* :func:`normalize_sql` renders a canonical string — keywords upper-case,
  identifiers lower-case, aliases resolved, whitespace collapsed — so that
  two queries differing only in formatting compare equal as strings.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from .ast_nodes import (
    AndCondition,
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    Join,
    LikeCondition,
    NotCondition,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    SubqueryTable,
    TableRef,
    TableSource,
)
from .parser import parse
from .unparse import unparse


def _binding_map(clause: Optional[FromClause]) -> Dict[str, str]:
    """Map each binding name (alias or table name, lower) to its base table."""
    bindings: Dict[str, str] = {}
    if clause is None:
        return bindings
    for source in clause.sources():
        if isinstance(source, TableRef):
            bindings[source.binding()] = source.name.lower()
        elif isinstance(source, SubqueryTable) and source.alias:
            bindings[source.alias.lower()] = source.alias.lower()
    return bindings


def resolve_aliases(query: Query) -> Query:
    """Return an equivalent query with table aliases resolved away.

    Column qualifiers that reference an alias are rewritten to the base table
    name and lower-cased; alias declarations on base tables are dropped.
    Aliases of derived tables (subqueries in FROM) are kept, since they are
    the only way to reference those columns.
    """
    return _resolve_query(query)


def _resolve_query(query: Query) -> Query:
    core = _resolve_core(query.core)
    set_query = _resolve_query(query.set_query) if query.set_query else None
    return Query(core=core, set_op=query.set_op, set_query=set_query)


def _resolve_core(core: SelectCore) -> SelectCore:
    bindings = _binding_map(core.from_clause)
    # In a single-table query every qualifier is redundant; dropping it makes
    # "SELECT T1.name FROM singer AS T1" equal to "SELECT name FROM singer".
    sole_table = None
    if core.from_clause is not None:
        sources = core.from_clause.sources()
        if len(sources) == 1 and isinstance(sources[0], TableRef):
            sole_table = sources[0].name.lower()

    def fix_expr(expr: Expr) -> Expr:
        if isinstance(expr, ColumnRef):
            table = expr.table.lower() if expr.table else None
            if table is not None:
                table = bindings.get(table, table)
            if sole_table is not None and table == sole_table:
                table = None
            return ColumnRef(column=expr.column.lower() if expr.column != "*" else "*",
                             table=table)
        if isinstance(expr, FuncCall):
            return FuncCall(name=expr.name, arg=fix_expr(expr.arg),
                            distinct=expr.distinct)
        if isinstance(expr, BinaryExpr):
            return BinaryExpr(op=expr.op, left=fix_expr(expr.left),
                              right=fix_expr(expr.right))
        if isinstance(expr, CaseExpr):
            whens = tuple(
                (fix_condition(cond), fix_expr(value))
                for cond, value in expr.whens
            )
            else_value = fix_expr(expr.else_) if expr.else_ is not None else None
            return CaseExpr(whens=whens, else_=else_value)
        return expr

    def fix_operand(value: Union[Expr, Query]) -> Union[Expr, Query]:
        if isinstance(value, Query):
            return _resolve_query(value)
        return fix_expr(value)

    def fix_condition(cond: Optional[Condition]) -> Optional[Condition]:
        if cond is None:
            return None
        if isinstance(cond, Comparison):
            return Comparison(op=cond.op, left=fix_expr(cond.left),
                              right=fix_operand(cond.right))
        if isinstance(cond, InCondition):
            values = (_resolve_query(cond.values)
                      if isinstance(cond.values, Query) else cond.values)
            return InCondition(expr=fix_expr(cond.expr), values=values,
                               negated=cond.negated)
        if isinstance(cond, LikeCondition):
            return LikeCondition(expr=fix_expr(cond.expr), pattern=cond.pattern,
                                 negated=cond.negated)
        if isinstance(cond, BetweenCondition):
            return BetweenCondition(expr=fix_expr(cond.expr),
                                    low=fix_operand(cond.low),
                                    high=fix_operand(cond.high),
                                    negated=cond.negated)
        if isinstance(cond, IsNullCondition):
            return IsNullCondition(expr=fix_expr(cond.expr), negated=cond.negated)
        if isinstance(cond, ExistsCondition):
            return ExistsCondition(query=_resolve_query(cond.query),
                                   negated=cond.negated)
        if isinstance(cond, NotCondition):
            fixed = fix_condition(cond.operand)
            assert fixed is not None
            return NotCondition(operand=fixed)
        if isinstance(cond, AndCondition):
            return AndCondition(operands=tuple(
                fix_condition(op) for op in cond.operands))  # type: ignore[misc]
        if isinstance(cond, OrCondition):
            return OrCondition(operands=tuple(
                fix_condition(op) for op in cond.operands))  # type: ignore[misc]
        raise TypeError(f"not a condition: {cond!r}")

    from_clause = None
    if core.from_clause is not None:
        def fix_source(source: TableSource) -> TableSource:
            if isinstance(source, TableRef):
                return TableRef(name=source.name.lower(), alias=None)
            return SubqueryTable(query=_resolve_query(source.query),
                                 alias=source.alias.lower() if source.alias else None)

        joins = tuple(
            Join(source=fix_source(j.source), condition=fix_condition(j.condition),
                 kind=j.kind, using=tuple(c.lower() for c in j.using))
            for j in core.from_clause.joins
        )
        from_clause = FromClause(source=fix_source(core.from_clause.source),
                                 joins=joins)

    return SelectCore(
        items=tuple(
            SelectItem(expr=fix_expr(item.expr),
                       alias=item.alias.lower() if item.alias else None)
            for item in core.items
        ),
        from_clause=from_clause,
        where=fix_condition(core.where),
        group_by=tuple(fix_expr(e) for e in core.group_by),
        having=fix_condition(core.having),
        order_by=tuple(
            OrderItem(expr=fix_expr(o.expr), direction=o.direction)
            for o in core.order_by
        ),
        limit=core.limit,
        distinct=core.distinct,
    )


def normalize_sql(sql: Union[str, Query]) -> str:
    """Canonical text form of a query (parse → resolve aliases → unparse).

    Raises:
        SQLSyntaxError: if ``sql`` is a string that does not parse.
    """
    query = parse(sql) if isinstance(sql, str) else sql
    return unparse(resolve_aliases(query))


def queries_equal(a: Union[str, Query], b: Union[str, Query]) -> bool:
    """Structural equality after alias resolution and case folding."""
    qa = parse(a) if isinstance(a, str) else a
    qb = parse(b) if isinstance(b, str) else b
    return resolve_aliases(qa) == resolve_aliases(qb)
