"""AST node definitions for the Spider SQL subset.

The tree is a faithful structural model of the SQL accepted by
:mod:`repro.sql.parser`:

* ``Query`` — one SELECT core plus an optional set operation tail
  (``UNION`` / ``INTERSECT`` / ``EXCEPT``).
* ``SelectCore`` — SELECT / FROM / WHERE / GROUP BY / HAVING / ORDER BY /
  LIMIT.
* Expressions — column references, literals, aggregate and scalar function
  calls, arithmetic.
* Conditions — comparisons (possibly against subqueries), ``IN``, ``LIKE``,
  ``BETWEEN``, ``IS NULL``, ``EXISTS``, and ``AND`` / ``OR`` / ``NOT``
  combinations.

All nodes are frozen dataclasses: they hash and compare structurally, which
the exact-match evaluator and the skeleton extractor rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference; ``column`` may be ``"*"``."""

    column: str
    table: Optional[str] = None

    def key(self) -> str:
        """Lower-cased ``table.column`` key used for comparisons."""
        if self.table:
            return f"{self.table.lower()}.{self.column.lower()}"
        return self.column.lower()


@dataclass(frozen=True)
class Literal:
    """A literal constant.

    Attributes:
        value: the literal's text — numbers keep their source spelling so
            unparsing round-trips exactly.
        kind: ``"number"``, ``"string"`` or ``"null"``.
    """

    value: str
    kind: str

    def python_value(self) -> Union[int, float, str, None]:
        """The literal as a Python value."""
        if self.kind == "null":
            return None
        if self.kind == "number":
            return float(self.value) if "." in self.value else int(self.value)
        return self.value


@dataclass(frozen=True)
class FuncCall:
    """Aggregate or scalar function application.

    ``COUNT(*)`` is represented as ``FuncCall("COUNT", ColumnRef("*"))``.
    """

    name: str
    arg: "Expr"
    distinct: bool = False


@dataclass(frozen=True)
class BinaryExpr:
    """Arithmetic expression ``left op right`` with op in ``+ - * / %``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class CaseExpr:
    """``CASE WHEN cond THEN expr [...] [ELSE expr] END``."""

    whens: Tuple[Tuple["Condition", "Expr"], ...]
    else_: Optional["Expr"] = None


Expr = Union[ColumnRef, Literal, FuncCall, BinaryExpr, CaseExpr]


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``left op right`` where op is one of ``= != < > <= >=``.

    ``right`` may be an expression or a scalar subquery.
    """

    op: str
    left: Expr
    right: Union[Expr, "Query"]


@dataclass(frozen=True)
class InCondition:
    """``expr [NOT] IN (values... | subquery)``."""

    expr: Expr
    values: Union[Tuple[Literal, ...], "Query"]
    negated: bool = False


@dataclass(frozen=True)
class LikeCondition:
    """``expr [NOT] LIKE pattern``."""

    expr: Expr
    pattern: Literal
    negated: bool = False


@dataclass(frozen=True)
class BetweenCondition:
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Union[Expr, "Query"]
    high: Union[Expr, "Query"]
    negated: bool = False


@dataclass(frozen=True)
class IsNullCondition:
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class ExistsCondition:
    """``[NOT] EXISTS (subquery)``."""

    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class NotCondition:
    """Logical negation of an arbitrary condition."""

    operand: "Condition"


@dataclass(frozen=True)
class AndCondition:
    """Conjunction of two or more conditions."""

    operands: Tuple["Condition", ...]


@dataclass(frozen=True)
class OrCondition:
    """Disjunction of two or more conditions."""

    operands: Tuple["Condition", ...]


Condition = Union[
    Comparison,
    InCondition,
    LikeCondition,
    BetweenCondition,
    IsNullCondition,
    ExistsCondition,
    NotCondition,
    AndCondition,
    OrCondition,
]


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """A base table in FROM, with optional alias."""

    name: str
    alias: Optional[str] = None

    def binding(self) -> str:
        """The name this source is referred to by (alias wins)."""
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class SubqueryTable:
    """A derived table ``(SELECT ...) AS alias`` in FROM."""

    query: "Query"
    alias: Optional[str] = None

    def binding(self) -> str:
        return (self.alias or "__subquery__").lower()


TableSource = Union[TableRef, SubqueryTable]


@dataclass(frozen=True)
class Join:
    """One ``JOIN source ON condition`` / ``JOIN source USING (...)`` step.

    ``kind`` is ``"JOIN"`` (inner) or ``"LEFT JOIN"``; ``condition`` may be
    ``None`` for Spider-style comma/implicit joins turned explicit.
    ``using`` holds the column names of a ``USING (a, b)`` clause and is
    empty for ``ON``/bare joins (``condition`` and ``using`` are mutually
    exclusive by construction).
    """

    source: TableSource
    condition: Optional[Condition] = None
    kind: str = "JOIN"
    using: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FromClause:
    """First source plus zero or more joins."""

    source: TableSource
    joins: Tuple[Join, ...] = ()

    def sources(self) -> Tuple[TableSource, ...]:
        """All table sources in order of appearance."""
        return (self.source,) + tuple(j.source for j in self.joins)

    def table_names(self) -> Tuple[str, ...]:
        """Lower-cased base-table names (subqueries excluded)."""
        return tuple(
            s.name.lower() for s in self.sources() if isinstance(s, TableRef)
        )


# ---------------------------------------------------------------------------
# SELECT core and query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One projected expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key; ``direction`` is ``"ASC"`` or ``"DESC"``."""

    expr: Expr
    direction: str = "ASC"


@dataclass(frozen=True)
class SelectCore:
    """A single SELECT statement without set operations."""

    items: Tuple[SelectItem, ...]
    from_clause: Optional[FromClause] = None
    where: Optional[Condition] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Condition] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class Query:
    """A full query: SELECT core plus optional set-operation tail."""

    core: SelectCore
    set_op: Optional[str] = None       # "UNION" | "UNION ALL" | "INTERSECT" | "EXCEPT"
    set_query: Optional["Query"] = None

    def flatten_set_ops(self) -> Tuple[Tuple[Optional[str], SelectCore], ...]:
        """All (operator, core) pairs left to right; first operator is None."""
        parts = [(None, self.core)]
        node = self
        while node.set_op is not None and node.set_query is not None:
            parts.append((node.set_op, node.set_query.core))
            node = node.set_query
        return tuple(parts)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def iter_conditions(condition: Optional[Condition]) -> Iterator[Condition]:
    """Yield every leaf predicate in a condition tree (AND/OR/NOT expanded)."""
    if condition is None:
        return
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, (AndCondition, OrCondition)):
            stack.extend(node.operands)
        elif isinstance(node, NotCondition):
            stack.append(node.operand)
        else:
            yield node


def iter_subqueries(query: Query) -> Iterator[Query]:
    """Yield every nested :class:`Query` inside ``query`` (not query itself)."""
    for _, core in query.flatten_set_ops():
        yield from _iter_core_subqueries(core)


def _iter_core_subqueries(core: SelectCore) -> Iterator[Query]:
    if core.from_clause is not None:
        for source in core.from_clause.sources():
            if isinstance(source, SubqueryTable):
                yield source.query
                yield from iter_subqueries(source.query)
        for join in core.from_clause.joins:
            yield from _iter_condition_subqueries(join.condition)
    yield from _iter_condition_subqueries(core.where)
    yield from _iter_condition_subqueries(core.having)


def _iter_condition_subqueries(condition: Optional[Condition]) -> Iterator[Query]:
    for leaf in iter_conditions(condition):
        if isinstance(leaf, Comparison) and isinstance(leaf.right, Query):
            yield leaf.right
            yield from iter_subqueries(leaf.right)
        elif isinstance(leaf, InCondition) and isinstance(leaf.values, Query):
            yield leaf.values
            yield from iter_subqueries(leaf.values)
        elif isinstance(leaf, ExistsCondition):
            yield leaf.query
            yield from iter_subqueries(leaf.query)
        elif isinstance(leaf, BetweenCondition):
            for side in (leaf.low, leaf.high):
                if isinstance(side, Query):
                    yield side
                    yield from iter_subqueries(side)


def iter_column_refs(query: Query) -> Iterator[ColumnRef]:
    """Yield every :class:`ColumnRef` appearing anywhere in ``query``,
    including inside nested subqueries."""
    cores = [core for _, core in query.flatten_set_ops()]
    for sub in iter_subqueries(query):
        cores.extend(core for _, core in sub.flatten_set_ops())
    for core in cores:
        yield from _core_columns(core)


def _core_columns(core: SelectCore) -> Iterator[ColumnRef]:
    for item in core.items:
        yield from _expr_columns(item.expr)
    for expr in core.group_by:
        yield from _expr_columns(expr)
    for order in core.order_by:
        yield from _expr_columns(order.expr)
    for cond in (core.where, core.having):
        for leaf in iter_conditions(cond):
            yield from _leaf_columns(leaf)
    if core.from_clause is not None:
        for join in core.from_clause.joins:
            for leaf in iter_conditions(join.condition):
                yield from _leaf_columns(leaf)


def _expr_columns(expr: Expr) -> Iterator[ColumnRef]:
    if isinstance(expr, ColumnRef):
        yield expr
    elif isinstance(expr, FuncCall):
        yield from _expr_columns(expr.arg)
    elif isinstance(expr, BinaryExpr):
        yield from _expr_columns(expr.left)
        yield from _expr_columns(expr.right)
    elif isinstance(expr, CaseExpr):
        for condition, value in expr.whens:
            for leaf in iter_conditions(condition):
                yield from _leaf_columns(leaf)
            yield from _expr_columns(value)
        if expr.else_ is not None:
            yield from _expr_columns(expr.else_)


def _leaf_columns(leaf: Condition) -> Iterator[ColumnRef]:
    if isinstance(leaf, Comparison):
        yield from _expr_columns(leaf.left)
        if not isinstance(leaf.right, Query):
            yield from _expr_columns(leaf.right)
    elif isinstance(leaf, (InCondition, LikeCondition, IsNullCondition)):
        yield from _expr_columns(leaf.expr)
    elif isinstance(leaf, BetweenCondition):
        yield from _expr_columns(leaf.expr)
        if not isinstance(leaf.low, Query):
            yield from _expr_columns(leaf.low)  # type: ignore[arg-type]
        if not isinstance(leaf.high, Query):
            yield from _expr_columns(leaf.high)  # type: ignore[arg-type]
