"""SQL toolkit: tokenizer, parser, AST, unparser, normaliser, skeletons,
and the Spider hardness rubric."""

from .ast_nodes import (
    AndCondition,
    BetweenCondition,
    BinaryExpr,
    CaseExpr,
    ColumnRef,
    Comparison,
    Condition,
    ExistsCondition,
    Expr,
    FromClause,
    FuncCall,
    InCondition,
    IsNullCondition,
    Join,
    LikeCondition,
    Literal,
    NotCondition,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    SubqueryTable,
    TableRef,
    iter_column_refs,
    iter_conditions,
    iter_subqueries,
)
from .canonical import (
    canonical_fingerprint,
    canonicalize,
    canonicalize_condition,
    condition_keys,
    core_components,
    expr_key,
    leaf_key,
    query_key,
)
from .dialect import (
    REFERENCE_DIALECT,
    DialectProfile,
    dialect_names,
    get_dialect,
    reference_dialect,
    register_dialect,
)
from .hardness import HARDNESS_LEVELS, hardness
from .normalize import normalize_sql, queries_equal, resolve_aliases
from .parser import parse, try_parse
from .skeleton import (
    query_signature,
    skeleton_similarity,
    skeleton_tokens,
    sql_skeleton,
)
from .tokens import Token, TokenType, tokenize
from .transpile import (
    normalize_to_reference,
    parse_dialect,
    render,
    transpile,
)
from .unparse import unparse

__all__ = [
    "AndCondition", "BetweenCondition", "BinaryExpr", "CaseExpr", "ColumnRef",
    "Comparison", "Condition", "ExistsCondition", "Expr", "FromClause",
    "FuncCall", "InCondition", "IsNullCondition", "Join", "LikeCondition",
    "Literal", "NotCondition", "OrCondition", "OrderItem", "Query",
    "SelectCore", "SelectItem", "SubqueryTable", "TableRef",
    "iter_column_refs", "iter_conditions", "iter_subqueries",
    "HARDNESS_LEVELS", "hardness", "normalize_sql", "queries_equal",
    "resolve_aliases", "parse", "try_parse", "query_signature",
    "skeleton_similarity", "skeleton_tokens", "sql_skeleton",
    "Token", "TokenType", "tokenize", "unparse",
    "DialectProfile", "REFERENCE_DIALECT", "dialect_names", "get_dialect",
    "reference_dialect", "register_dialect", "normalize_to_reference",
    "parse_dialect", "render", "transpile",
    "canonical_fingerprint", "canonicalize", "canonicalize_condition",
    "condition_keys", "core_components", "expr_key", "leaf_key", "query_key",
]
