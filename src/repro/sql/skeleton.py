"""SQL skeleton extraction.

The DAIL selection strategy ranks candidate examples by the similarity of
their *SQL skeletons* — the query with all schema identifiers and literal
values masked out, keeping only keywords and structure::

    SELECT name FROM singer WHERE age > 20 ORDER BY age DESC LIMIT 3
    →  SELECT _ FROM _ WHERE _ > _ ORDER BY _ DESC LIMIT _

Two skeletons are produced:

* :func:`sql_skeleton` — token-level mask, robust to unparseable SQL.
* :func:`query_signature` — AST-level structural signature used by the
  simulated LLM to measure example relevance (clause multiset).
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple, Union

from ..cache.lru import memoize

from .ast_nodes import (
    BetweenCondition,
    Comparison,
    Condition,
    ExistsCondition,
    FuncCall,
    InCondition,
    IsNullCondition,
    LikeCondition,
    Query,
    iter_conditions,
    iter_subqueries,
)
from .parser import try_parse
from .tokens import TokenType, tokenize
from .unparse import unparse

_MASK = "_"


def sql_skeleton(sql: Union[str, Query]) -> str:
    """Mask identifiers and literals, keeping keywords and operators.

    Consecutive masked tokens (including ``.`` and ``,`` between them) are
    collapsed into a single ``_``, and ``AS`` aliases are dropped, so column
    lists and qualified names of any length produce identical skeletons.
    """
    text = unparse(sql) if isinstance(sql, Query) else sql
    try:
        tokens = tokenize(text)
    except Exception:
        return text.strip().upper()

    masked: List[str] = []
    skip_next_ident = False
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        if token.type is TokenType.KEYWORD and token.value == "AS":
            skip_next_ident = True
            continue
        if token.type in (TokenType.IDENT, TokenType.NUMBER, TokenType.STRING):
            if skip_next_ident:
                skip_next_ident = False
                continue
            masked.append(_MASK)
        elif token.type is TokenType.PUNCT and token.value in (".", ","):
            masked.append(token.value)
        elif token.type is TokenType.PUNCT and token.value == "*":
            masked.append(_MASK)
        else:
            skip_next_ident = False
            masked.append(token.value)

    collapsed: List[str] = []
    for piece in masked:
        if piece == _MASK and collapsed and collapsed[-1] == _MASK:
            continue
        if piece in (".", ","):
            # Swallow separators between masked slots: "_ . _" and "_ , _"
            # both collapse to "_".
            if collapsed and collapsed[-1] == _MASK:
                continue
        collapsed.append(piece)
    # A separator may now be followed by a mask again ("_ , _" became
    # ["_", "_"] handled above); also drop masks following a swallowed comma.
    result: List[str] = []
    for piece in collapsed:
        if piece == _MASK and result and result[-1] == _MASK:
            continue
        result.append(piece)
    return " ".join(result)


def skeleton_tokens(sql: Union[str, Query]) -> List[str]:
    """The skeleton as a token list (for similarity computations)."""
    return sql_skeleton(sql).split()


def query_signature(query: Union[str, Query]) -> Set[str]:
    """Structural feature set of a query.

    Features include clause presence (``where``, ``group``, ``order:desc``,
    ``limit``…), aggregate usage (``agg:count``…), predicate operators
    (``pred:>``, ``pred:like``…), join arity, set operators and nesting
    depth.  Used to measure how structurally close an in-context example is
    to the target query.
    """
    if isinstance(query, str):
        parsed = try_parse(query)
        if parsed is None:
            return {f"tok:{t}" for t in skeleton_tokens(query)}
        query = parsed

    features: Set[str] = set()
    for op, core in query.flatten_set_ops():
        if op:
            features.add(f"setop:{op.lower()}")
        if core.distinct:
            features.add("distinct")
        features.add(f"select:{len(core.items)}")
        for item in core.items:
            if isinstance(item.expr, FuncCall):
                features.add(f"agg:{item.expr.name.lower()}")
        if core.from_clause is not None:
            n_tables = len(core.from_clause.sources())
            if n_tables > 1:
                features.add(f"join:{n_tables}")
        if core.where is not None:
            features.add("where")
            for leaf in iter_conditions(core.where):
                features.add(f"pred:{_leaf_op(leaf)}")
        if core.group_by:
            features.add("group")
        if core.having is not None:
            features.add("having")
            for leaf in iter_conditions(core.having):
                if isinstance(leaf, Comparison) and isinstance(leaf.left, FuncCall):
                    features.add(f"having-agg:{leaf.left.name.lower()}")
        for order in core.order_by:
            features.add(f"order:{order.direction.lower()}")
            if isinstance(order.expr, FuncCall):
                features.add(f"order-agg:{order.expr.name.lower()}")
        if core.limit is not None:
            features.add("limit")
    nested = list(iter_subqueries(query))
    if nested:
        features.add(f"nested:{min(len(nested), 3)}")
    return features


def _leaf_op(leaf: Condition) -> str:
    if isinstance(leaf, Comparison):
        suffix = ":sub" if isinstance(leaf.right, Query) else ""
        return leaf.op + suffix
    if isinstance(leaf, InCondition):
        return "in:sub" if isinstance(leaf.values, Query) else "in"
    if isinstance(leaf, LikeCondition):
        return "like"
    if isinstance(leaf, BetweenCondition):
        return "between"
    if isinstance(leaf, IsNullCondition):
        return "isnull"
    if isinstance(leaf, ExistsCondition):
        return "exists"
    return "other"


@memoize(max_entries=50_000)
def _features_cached(sql: str) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(signature, skeleton bigrams) of a SQL string, memoised.

    Selection strategies compare every target against every candidate;
    candidates repeat across targets, so caching turns the quadratic
    parse cost into a linear one.  The memo is a bounded, thread-safe
    LRU (:mod:`repro.cache.lru`) so arbitrarily long sweeps over
    arbitrarily many corpora cannot grow memory without limit.
    """
    return frozenset(query_signature(sql)), frozenset(_bigrams(skeleton_tokens(sql)))


def _features(query: Union[str, Query]) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    if isinstance(query, str):
        return _features_cached(query)
    return (
        frozenset(query_signature(query)),
        frozenset(_bigrams(skeleton_tokens(query))),
    )


def skeleton_similarity(a: Union[str, Query], b: Union[str, Query]) -> float:
    """Similarity of two queries' structure in ``[0, 1]``.

    The score blends Jaccard similarity of :func:`query_signature` features
    with Jaccard similarity of skeleton-token bigrams, so both clause
    composition and token order matter.  String inputs are memoised.
    """
    sig_a, bi_a = _features(a)
    sig_b, bi_b = _features(b)
    sig_score = _jaccard(sig_a, sig_b)
    bigram_score = _jaccard(bi_a, bi_b)
    return 0.6 * sig_score + 0.4 * bigram_score


def _bigrams(tokens: List[str]) -> Set[str]:
    if len(tokens) < 2:
        return set(tokens)
    return {f"{tokens[i]} {tokens[i + 1]}" for i in range(len(tokens) - 1)}


def _jaccard(a: Set[str], b: Set[str]) -> float:
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)
