"""Dialect-aware SQL transpiler.

Two directions over the shared AST:

* :func:`normalize_to_reference` rewrites dialect-flavored SQL *text* into
  the reference (SQLite/Spider) grammar the parser accepts — double-quoted
  identifiers become backtick identifiers, ``TRUE``/``FALSE`` become
  ``1``/``0``, dialect function spellings fold back to canonical names,
  ``SELECT TOP n`` lowers to ``LIMIT n`` and ``CONCAT(a, b)`` unfolds to
  ``(a || b)``.  The rewrite is token-span based: every span of the input
  (including whitespace and comments) is preserved verbatim unless a rule
  touches it, and text that does not lex is returned unchanged so the
  parser can raise its usual :class:`~repro.errors.SQLSyntaxError`.
* :func:`render` unparses an AST in a target dialect's flavor (identifier
  quoting, ``LIMIT`` vs ``TOP``, function spellings, concat style).

The round-trip contract — property-tested over the gold corpus for every
registered profile — is::

    parse_dialect(render(ast, profile), profile) == ast
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Pattern, Tuple, Union

from .ast_nodes import Query
from .dialect import DialectProfile, get_dialect
from .parser import parse
from .tokens import _TOKEN_RE
from .unparse import unparse

_Span = Tuple[str, str]  # (regex group name, verbatim text)

_SET_OPS = ("UNION", "INTERSECT", "EXCEPT")

#: profile name → (profile instance, compiled trigger pattern).  The
#: instance is kept so a re-registered profile under the same name gets
#: its pattern rebuilt rather than served stale.
_TRIGGER_CACHE: Dict[str, Tuple[DialectProfile, Optional[Pattern[str]]]] = {}


def _trigger_pattern(profile: DialectProfile) -> Optional[Pattern[str]]:
    """A cheap pre-scan: the only substrings whose presence can make
    :func:`normalize_to_reference` change the text.  Statements without
    any trigger — the vast majority of Spider-style SQL — skip the
    lex/rewrite entirely.  False positives (a trigger inside a string
    literal, say) just take the slow path."""
    cached = _TRIGGER_CACHE.get(profile.name)
    if cached is not None and cached[0] == profile:
        return cached[1]
    words: List[str] = []
    if profile.keyword_booleans:
        words += ["TRUE", "FALSE"]
    if profile.limit_style == "top":
        words.append("TOP")
    if profile.concat_style == "function":
        words.append("CONCAT")
    words += [
        spelled for canonical, spelled in profile.function_names.items()
        if spelled.upper() != canonical.upper()
    ]
    parts: List[str] = []
    if profile.double_quote_means == "identifier":
        parts.append('"')
    if words:
        parts.append(r"\b(?:" + "|".join(map(re.escape, words)) + r")\b")
    pattern = re.compile("|".join(parts), re.IGNORECASE) if parts else None
    _TRIGGER_CACHE[profile.name] = (profile, pattern)
    return pattern


def _profile(profile: Union[str, DialectProfile]) -> DialectProfile:
    if isinstance(profile, DialectProfile):
        return profile
    return get_dialect(profile)


def _spans(sql: str) -> Optional[List[_Span]]:
    """Lex ``sql`` into contiguous (kind, text) spans, or ``None`` if any
    character falls outside the token grammar."""
    out: List[_Span] = []
    pos = 0
    length = len(sql)
    while pos < length:
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            return None
        out.append((match.lastgroup or "", match.group()))
        pos = match.end()
    return out


def _rewrite_tokens(spans: List[_Span], profile: DialectProfile) -> List[_Span]:
    """Per-token rewrites: quoting, boolean literals, function names."""
    out: List[_Span] = []
    for kind, text in spans:
        if (
            kind == "string"
            and text.startswith('"')
            and profile.double_quote_means == "identifier"
        ):
            body = text[1:-1].replace('""', '"')
            out.append(("quoted_ident", f"`{body}`"))
            continue
        if kind == "word":
            upper = text.upper()
            if profile.keyword_booleans and upper in ("TRUE", "FALSE"):
                out.append(("number", "1" if upper == "TRUE" else "0"))
                continue
            canonical = profile.canonical_function(upper)
            if canonical != upper:
                out.append(("word", canonical))
                continue
        out.append((kind, text))
    return out


def _next_significant(spans: List[_Span], index: int) -> int:
    while index < len(spans) and spans[index][0] in ("ws", "comment"):
        index += 1
    return index


def _lower_top(spans: List[_Span]) -> List[_Span]:
    """Lower ``SELECT [DISTINCT] TOP n`` to a trailing ``LIMIT n``.

    The LIMIT lands where the select core ends: before the paren that
    closes a subquery, before a set-operation keyword at the same depth,
    or at the end of the statement — matching where the reference
    unparser emits it.
    """
    out: List[_Span] = []
    pending: List[Tuple[int, str]] = []  # (paren depth at SELECT, count)
    skip: set = set()
    depth = 0
    for i, (kind, text) in enumerate(spans):
        if i in skip:
            continue
        if kind == "punct" and text == "(":
            depth += 1
        elif kind == "punct" and text == ")":
            while pending and pending[-1][0] >= depth:
                out.append(("inserted", f" LIMIT {pending.pop()[1]} "))
            depth -= 1
        elif kind == "punct" and text == ";":
            while pending:
                out.append(("inserted", f" LIMIT {pending.pop()[1]} "))
        elif kind == "word":
            upper = text.upper()
            if upper in _SET_OPS:
                while pending and pending[-1][0] == depth:
                    out.append(("inserted", f" LIMIT {pending.pop()[1]} "))
            elif upper == "SELECT":
                j = _next_significant(spans, i + 1)
                if (
                    j < len(spans)
                    and spans[j][0] == "word"
                    and spans[j][1].upper() in ("DISTINCT", "ALL")
                ):
                    j = _next_significant(spans, j + 1)
                if (
                    j < len(spans)
                    and spans[j][0] == "word"
                    and spans[j][1].upper() == "TOP"
                ):
                    k = _next_significant(spans, j + 1)
                    if k < len(spans) and spans[k][0] == "number":
                        pending.append((depth, spans[k][1]))
                        skip.update(range(j, k + 1))
        out.append((kind, text))
    while pending:
        out.append(("inserted", f" LIMIT {pending.pop()[1]} "))
    return out


def _fold_concat(spans: List[_Span]) -> List[_Span]:
    """Unfold ``CONCAT(a, b, ...)`` into ``(a || b || ...)``.

    Outermost calls are rewritten first; nested calls survive verbatim
    inside the argument spans and are picked up on the next iteration.
    """
    for _ in range(64):
        call = _find_concat(spans)
        if call is None:
            return spans
        start, open_paren, close_paren, arg_groups = call
        replacement: List[_Span] = [("punct", "(")]
        for index, group in enumerate(arg_groups):
            if index:
                replacement.append(("op", " || "))
            replacement.extend(group)
        replacement.append(("punct", ")"))
        spans = spans[:start] + replacement + spans[close_paren + 1:]
    return spans


def _find_concat(
    spans: List[_Span],
) -> Optional[Tuple[int, int, int, List[List[_Span]]]]:
    """Locate the first CONCAT call; returns
    ``(word_index, open_index, close_index, arg_span_groups)`` or None."""
    for i, (kind, text) in enumerate(spans):
        if kind != "word" or text.upper() != "CONCAT":
            continue
        j = _next_significant(spans, i + 1)
        if j >= len(spans) or spans[j] != ("punct", "("):
            continue
        depth = 0
        args: List[List[_Span]] = [[]]
        for k in range(j, len(spans)):
            s_kind, s_text = spans[k]
            if s_kind == "punct" and s_text == "(":
                depth += 1
                if depth == 1:
                    continue
            elif s_kind == "punct" and s_text == ")":
                depth -= 1
                if depth == 0:
                    if len(args) < 2 or not all(
                        any(g[0] not in ("ws", "comment") for g in group)
                        for group in args
                    ):
                        break  # 0/1-arg call: leave for the parser to reject
                    return i, j, k, args
            elif s_kind == "punct" and s_text == "," and depth == 1:
                args.append([])
                continue
            args[-1].append(spans[k])
        # unbalanced or degenerate call: skip this candidate
    return None


def normalize_to_reference(
    sql: str, profile: Union[str, DialectProfile]
) -> str:
    """Rewrite dialect-flavored SQL text into the reference grammar.

    Identity for the reference profile and for text that does not lex
    (the parser's error message then points at the original text).
    """
    prof = _profile(profile)
    if prof.is_reference:
        return sql
    trigger = _trigger_pattern(prof)
    if trigger is None or trigger.search(sql) is None:
        return sql
    spans = _spans(sql)
    if spans is None:
        return sql
    spans = _rewrite_tokens(spans, prof)
    if prof.limit_style == "top":
        spans = _lower_top(spans)
    if prof.concat_style == "function":
        spans = _fold_concat(spans)
    return "".join(text for _, text in spans)


def parse_dialect(sql: str, profile: Union[str, DialectProfile]) -> Query:
    """Parse dialect-flavored SQL into the shared reference AST."""
    return parse(normalize_to_reference(sql, _profile(profile)))


def render(
    query: Query, profile: Union[str, DialectProfile, None] = None
) -> str:
    """Unparse an AST in the target dialect's flavor (default reference)."""
    if profile is None:
        return unparse(query)
    return unparse(query, profile=_profile(profile))


def transpile(
    sql: str,
    source: Union[str, DialectProfile],
    target: Union[str, DialectProfile],
) -> str:
    """Rewrite SQL text from one dialect to another via the shared AST.

    Identity when source and target name the same profile (the text is
    returned verbatim, preserving cache-key stability for the common
    same-dialect path).
    """
    src = _profile(source)
    dst = _profile(target)
    if src.name == dst.name:
        return sql
    return render(parse_dialect(sql, src), dst)
