"""Command-line interface: ``dail-sql``.

Subcommands:

* ``experiment <artifact>`` — run one paper table/figure and print it
  (``--fast`` for the reduced corpus, ``--limit N`` for a smoke run).
* ``experiments`` — run every paper artifact.
* ``generate`` — write the synthetic Spider-format corpus
  (``--databases`` adds the SQLite files in the full Spider layout).
* ``validate`` — check a Spider-layout directory (gold queries parse and
  reference known tables/columns).
* ``compare`` — run two configurations and report the paired McNemar /
  bootstrap significance of the difference.
* ``report`` — regenerate every artifact into one Markdown document.
* ``ask`` — translate one question with the DAIL-SQL pipeline against a
  benchmark database.
* ``lint`` — run the schema-aware static analyzer over SQL from a file,
  stdin, or a persisted predictions file, printing diagnostics
  (``--json`` for machine-readable output, ``--repair`` to also show the
  deterministic repair pass).  Exit code 1 when any fatal diagnostic
  fired.
* ``serve`` — boot the long-lived HTTP/JSON service (``POST
  /v1/generate``, ``/v1/lint``, ``/v1/execute``, ``/v1/explain``; ``GET
  /healthz``, ``/metrics``) with request coalescing, per-tenant rate
  limits and per-request deadlines over the same artifact cache sweeps
  use.
* ``models`` — list available model profiles.
* ``cache`` — inspect (``stats``) or wipe (``clear``) the on-disk
  artifact cache that makes sweeps incremental across processes.
* ``trace`` — analyse a run's JSONL trace file: ``summary`` (stage /
  hardness / config-cell tables), ``slowest`` (top spans by duration),
  ``errors`` (failures grouped by error class), ``export`` (Prometheus
  text snapshot), ``correlate <request-id>`` (one serving request's
  full span tree — serve, coalesced batches, pipeline stages).
* ``obs`` — observability v2 tools: ``report`` prints the efficiency
  view (EX next to metered tokens and simulated cost per system, live
  runs reconciled exactly against the metrics registry), ``diff``
  compares two ``BENCH_*.json`` baseline snapshots and exits 1 on
  regressions beyond the threshold.

Evaluation commands accept ``--cache-dir DIR`` (equivalent to the
``REPRO_CACHE_DIR`` environment variable): with a directory configured,
pipeline artifacts — selections, preliminary SQL, generations, executed
rows — persist across invocations, so rerunning an identical sweep is a
warm, generation-free replay.  They also accept ``--trace-dir DIR``
(``REPRO_TRACE_DIR``) to stream a per-run span tree for ``dail-sql
trace``, and ``--progress`` / ``--no-progress`` to force the live
stderr status line on or off (default: shown on a terminal).

Resilience flags (same commands): ``--journal PATH`` checkpoints every
completed example to a JSONL run journal, ``--resume`` restarts an
interrupted sweep from that journal (skipped examples are replayed from
the checkpoint, so the final report is byte-identical to an
uninterrupted run), and ``--chaos RATE`` / ``--chaos-seed N`` inject a
deterministic fault schedule — transient API errors, locked databases,
corrupt cache artifacts — for resilience drills.  Ctrl-C once drains
in-flight work, checkpoints, and writes a report flagged ``partial``;
Ctrl-C twice aborts immediately.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .errors import ReproError


def _apply_workers(args: argparse.Namespace) -> None:
    """Honour a ``--workers N`` flag by raising the sweep default."""
    workers = getattr(args, "workers", None)
    if workers is not None:
        from .experiments.context import set_default_workers

        set_default_workers(workers)


def _apply_cache(args: argparse.Namespace) -> None:
    """Honour a ``--cache-dir DIR`` flag (overrides ``REPRO_CACHE_DIR``)."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        from .cache.store import configure_cache_dir

        configure_cache_dir(cache_dir)


def _apply_trace(args: argparse.Namespace) -> None:
    """Honour a ``--trace-dir DIR`` flag (overrides ``REPRO_TRACE_DIR``)."""
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is not None:
        from .obs.trace import configure_trace_dir

        configure_trace_dir(trace_dir)


def _apply_progress(args: argparse.Namespace) -> None:
    """Honour ``--progress``/``--no-progress`` (unset = auto on a TTY)."""
    progress = getattr(args, "progress", None)
    if progress is not None:
        from .experiments.context import set_default_progress

        set_default_progress(progress)


def _apply_repair(args: argparse.Namespace) -> None:
    """Honour a ``--repair`` flag by enabling the analyzer repair pass."""
    if getattr(args, "repair", False):
        from .experiments.context import set_default_repair

        set_default_repair(True)


def _apply_feedback_rounds(args: argparse.Namespace) -> None:
    """Honour a ``--feedback-rounds N`` flag by enabling the
    execution-feedback repair loop on subsequently built contexts."""
    rounds = getattr(args, "feedback_rounds", None)
    if rounds is not None:
        from .errors import ExperimentError
        from .experiments.context import set_default_feedback_rounds
        from .repair.feedback import MAX_FEEDBACK_ROUNDS

        if not 0 <= rounds <= MAX_FEEDBACK_ROUNDS:
            raise ExperimentError(
                f"--feedback-rounds must be in [0, {MAX_FEEDBACK_ROUNDS}], "
                f"got {rounds}"
            )
        set_default_feedback_rounds(rounds)


def _apply_backend(args: argparse.Namespace) -> None:
    """Honour a ``--backend NAME`` flag: evaluation pools execute on
    that backend (SQLite reference, DuckDB, or a dialect emulation)."""
    backend = getattr(args, "backend", None)
    if backend is not None:
        from .experiments.context import set_default_backend

        set_default_backend(backend)


def _apply_resilience(args: argparse.Namespace) -> None:
    """Honour ``--journal``/``--resume``/``--chaos`` and install the
    two-stage SIGINT handler (first Ctrl-C drains and checkpoints,
    second aborts)."""
    from .errors import ExperimentError
    from .experiments.context import set_default_chaos, set_default_journal
    from .resilience.interrupt import default_controller

    journal = getattr(args, "journal", None)
    resume = bool(getattr(args, "resume", False))
    if resume and journal is None:
        raise ExperimentError("--resume requires --journal PATH")
    if journal is not None:
        set_default_journal(journal, resume=resume)
    chaos_rate = getattr(args, "chaos", None)
    if chaos_rate is not None:
        from .resilience.chaos import ChaosPolicy

        if not 0.0 <= chaos_rate <= 1.0:
            raise ExperimentError(
                f"--chaos rate must be in [0, 1], got {chaos_rate}"
            )
        set_default_chaos(
            ChaosPolicy.uniform(
                chaos_rate, seed=getattr(args, "chaos_seed", 0)
            )
        )
    default_controller().install()


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_experiment

    _apply_workers(args)
    _apply_cache(args)
    _apply_trace(args)
    _apply_progress(args)
    _apply_repair(args)
    _apply_feedback_rounds(args)
    _apply_backend(args)
    _apply_resilience(args)
    result = run_experiment(args.artifact, fast=args.fast, limit=args.limit)
    print(result.render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import run_all

    _apply_workers(args)
    _apply_cache(args)
    _apply_trace(args)
    _apply_progress(args)
    _apply_repair(args)
    _apply_feedback_rounds(args)
    _apply_backend(args)
    _apply_resilience(args)
    for result in run_all(fast=args.fast, limit=args.limit):
        print(result.render())
        print()
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .dataset import CorpusConfig, build_corpus

    corpus = build_corpus(
        CorpusConfig(
            seed=args.seed,
            train_per_db=args.train_per_db,
            dev_per_db=args.dev_per_db,
        )
    )
    if args.databases:
        from .dataset.export import export_spider_layout

        export_spider_layout(corpus, args.output)
        extra = " (full Spider layout incl. SQLite databases)"
    else:
        corpus.train.save(args.output)
        corpus.dev.save(args.output)
        extra = ""
    print(
        f"wrote {len(corpus.train)} train / {len(corpus.dev)} dev examples "
        f"over {len(corpus.rows)} databases to {args.output}{extra}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Run two configurations and test the paired difference."""
    from .eval.harness import RunConfig
    from .eval.significance import compare_reports
    from .experiments.context import get_context

    _apply_cache(args)
    _apply_trace(args)
    _apply_progress(args)
    _apply_repair(args)
    _apply_feedback_rounds(args)
    _apply_backend(args)
    _apply_resilience(args)
    context = get_context(fast=args.fast)

    def parse_config(spec: str) -> RunConfig:
        # spec: model:representation[:selection+organization@k]
        parts = spec.split(":")
        model, representation = parts[0], parts[1] if len(parts) > 1 else "CR_P"
        selection = organization = None
        k = 0
        if len(parts) > 2 and parts[2]:
            strategy, _, shot = parts[2].partition("@")
            selection, _, organization = strategy.partition("+")
            k = int(shot or 5)
        return RunConfig(
            model=model, representation=representation,
            selection=selection or None,
            organization=organization or "FI_O", k=k,
        )

    _apply_workers(args)
    config_a = parse_config(args.a)
    config_b = parse_config(args.b)
    report_a, report_b = context.sweep([config_a, config_b], limit=args.limit)
    comparison = compare_reports(report_a, report_b)
    print(f"A: {config_a.resolved_label()}  EX={report_a.execution_accuracy:.3f}")
    print(f"B: {config_b.resolved_label()}  EX={report_b.execution_accuracy:.3f}")
    print(
        f"delta={comparison.delta:+.3f}  "
        f"discordant A-only/B-only={comparison.a_only}/{comparison.b_only}  "
        f"McNemar p={comparison.p_value:.4f}  "
        f"95% CI [{comparison.ci_low:+.3f}, {comparison.ci_high:+.3f}]  "
        f"{'SIGNIFICANT' if comparison.significant else 'not significant'}"
    )
    return 0


def _cmd_ask(args: argparse.Namespace) -> int:
    from .core.dail_sql import DailSQL
    from .experiments.context import get_context
    from .llm.oracle import GoldOracle
    from .llm.simulated import make_llm

    context = get_context(fast=args.fast)
    oracle = GoldOracle(context.dev, context.train)
    llm = make_llm(args.model, oracle)
    pipeline = DailSQL(llm, context.train, k=args.k)
    schema = context.dev.schema(args.db)
    database = context.corpus.pool().get(args.db)
    result = pipeline.generate_sql(schema, args.question, database=database)
    print(f"-- model: {args.model}, examples used: {result.n_examples}")
    print(result.sql)
    rows = database.try_execute(result.sql)
    if rows is not None:
        for row in rows[:10]:
            print(row)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Validate a Spider-layout directory (ours or a real download)."""
    from .dataset.export import load_spider_layout
    from .dataset.spider import validate_dataset

    train, dev, databases = load_spider_layout(args.directory)
    problems = validate_dataset(train) + validate_dataset(dev)
    print(f"{len(train)} train / {len(dev)} dev examples, "
          f"{len(databases)} database files")
    if problems:
        for problem in problems[:args.max_problems]:
            print(f"  PROBLEM: {problem}")
        print(f"{len(problems)} problem(s) found")
        return 1
    print("all gold queries parse and reference known tables/columns")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.markdown import write_report

    _apply_workers(args)
    _apply_cache(args)
    _apply_trace(args)
    _apply_progress(args)
    _apply_repair(args)
    _apply_feedback_rounds(args)
    _apply_backend(args)
    _apply_resilience(args)
    path = write_report(
        args.output, fast=args.fast, limit=args.limit,
        include_supplementary=not args.paper_only,
    )
    print(f"wrote benchmark report to {path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the on-disk artifact cache."""
    from .cache.store import DiskTier, resolved_cache_dir

    _apply_cache(args)
    root = resolved_cache_dir()
    if root is None:
        print(
            "error: no cache directory configured "
            "(pass --cache-dir or set REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 1
    tier = DiskTier(root)

    if args.action == "clear":
        removed = tier.clear()
        print(f"cleared {removed} cached artifact(s) from {root}")
        return 0

    sizes = tier.stats()
    counters = tier.read_counters()
    stages = sorted(set(sizes) | set(counters))
    print(f"cache directory: {root}")
    backends = tier.read_backends()
    if backends:
        print(f"backends: {', '.join(backends)}")
    if not stages:
        print("(empty)")
        return 0
    header = (
        f"{'stage':<12} {'entries':>8} {'bytes':>12} "
        f"{'hits':>8} {'misses':>8} {'hit rate':>9}"
    )
    print(header)
    total_entries = 0
    total_bytes = 0
    for stage in stages:
        size = sizes.get(stage, {})
        entries = size.get("entries", 0)
        nbytes = size.get("bytes", 0)
        total_entries += entries
        total_bytes += nbytes
        stage_counters = counters.get(stage, {})
        hits = stage_counters.get("hits", 0)
        misses = stage_counters.get("misses", 0)
        rate = f"{hits / (hits + misses):8.1%}" if hits + misses else f"{'-':>8}"
        print(
            f"{stage:<12} {entries:>8} {nbytes:>12} "
            f"{hits:>8} {misses:>8} {rate:>9}"
        )
    print(f"{'total':<12} {total_entries:>8} {total_bytes:>12}")
    return 0


def _format_s(value: float) -> str:
    if value >= 1.0:
        return f"{value:7.2f}s "
    return f"{value * 1000:7.1f}ms"


def _cmd_trace(args: argparse.Namespace) -> int:
    """Analyse a run's JSONL trace file (or a directory of them)."""
    from .obs import tracefile

    if args.action == "correlate":
        # Here the positional is the request id; the trace location is
        # the optional second positional (default: configured trace dir).
        from .obs.trace import resolved_trace_dir

        location = args.path if args.path is not None else resolved_trace_dir()
        if location is None:
            print(
                "error: no trace location given and no trace directory "
                "configured (pass a path, or set --trace-dir / "
                "$REPRO_TRACE_DIR)",
                file=sys.stderr,
            )
            return 1
        spans = tracefile.load_spans(location)
        tree = tracefile.correlate(spans, args.trace)
        print(tracefile.format_span_tree(tree))
        return 0

    spans = tracefile.load_spans(args.trace)

    if args.action == "export":
        text = tracefile.to_prometheus(spans)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote Prometheus snapshot to {args.output}")
        else:
            print(text, end="")
        return 0

    if args.action == "slowest":
        rows = tracefile.slowest(spans, kind=args.kind, top=args.top)
        print(f"{'dur':>9}  {args.kind}")
        for span in rows:
            extra = ""
            if args.kind == "example":
                hardness = span.get("attrs", {}).get("hardness", "")
                cell = span.get("attrs", {}).get("cell", "")
                extra = f"  [{hardness}] {cell}"
            print(f"{_format_s(float(span.get('dur_s', 0.0)))}  "
                  f"{span.get('name')}{extra}")
        return 0

    if args.action == "errors":
        groups = tracefile.error_groups(spans)
        if not groups:
            print("no errored examples in trace")
            return 0
        for group in groups:
            print(f"{group['error_class']}: {group['count']} example(s)")
            for example in group["examples"][:args.top]:
                print(f"  {example}")
            for message in group["messages"][:3]:
                print(f"  > {message}")
        return 0

    # summary
    info = tracefile.run_info(spans)
    if info:
        backend = f", backend {info['backend']}" if info.get("backend") else ""
        print(
            f"run: {info['configs']} config(s) x {info['examples']} "
            f"example(s), {info['workers']} worker(s), "
            f"{info['duration_s']:.2f}s wall-clock{backend}"
        )
    print(f"\n{'stage':<10} {'count':>6} {'total':>9} {'share':>6} "
          f"{'p50':>9} {'p95':>9}")
    for row in tracefile.stage_summary(spans):
        print(
            f"{row['stage']:<10} {row['count']:>6} "
            f"{row['total_s']:>8.3f}s {row['share']:>6.1%} "
            f"{_format_s(row['p50_s'])} {_format_s(row['p95_s'])}"
        )
    hardness_rows = tracefile.hardness_summary(spans)
    if hardness_rows:
        print(f"\n{'hardness':<10} {'count':>6} {'total':>9} "
              f"{'p50':>9} {'p95':>9} {'errors':>7}")
        for row in hardness_rows:
            print(
                f"{row['hardness']:<10} {row['count']:>6} "
                f"{row['total_s']:>8.3f}s {_format_s(row['p50_s'])} "
                f"{_format_s(row['p95_s'])} {row['errors']:>7}"
            )
    cell_rows = tracefile.cell_summary(spans)
    if len(cell_rows) > 1:
        print(f"\n{'count':>6} {'total':>9} {'p50':>9} {'errors':>7}  cell")
        for row in cell_rows:
            print(
                f"{row['count']:>6} {row['total_s']:>8.3f}s "
                f"{_format_s(row['p50_s'])} {row['errors']:>7}  {row['cell']}"
            )
    return 0


def _print_efficiency_rows(rows: List[dict]) -> None:
    print(
        f"{'system':<36} {'n':>4} {'ex':>7} {'prompt':>9} {'compl':>8} "
        f"{'cost_usd':>10} {'ex/1k tok':>10}"
    )
    for row in rows:
        print(
            f"{str(row['label'])[:36]:<36} {row['n']:>4} {row['ex']:>7.4f} "
            f"{row['prompt_tokens']:>9} {row['completion_tokens']:>8} "
            f"{row['cost_usd']:>10.6f} {row['ex_per_1k_tokens']:>10.4f}"
        )


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """The efficiency view: EX next to metered tokens/cost per system.

    With a reports directory, reads persisted reports.  Without one,
    runs a live smoke sweep into a private registry and verifies the
    per-cell telemetry reconciles *exactly* with the registry's
    ``repro_llm_*`` counters (exit 1 on any mismatch).
    """
    import math

    if args.reports is not None:
        from .eval.persistence import load_reports

        reports = load_reports(args.reports)
        if not reports:
            print(f"no reports in {args.reports}", file=sys.stderr)
            return 1
        _print_efficiency_rows([r.efficiency_summary() for r in reports])
        return 0

    _apply_cache(args)
    from .eval.engine import GridRunner
    from .eval.harness import RunConfig
    from .experiments.context import get_context
    from .obs.metrics import M_LLM_COST, M_LLM_TOKENS, MetricsRegistry

    context = get_context(args.fast)
    registry = MetricsRegistry()
    configs = [
        RunConfig(model="gpt-4", representation="CR_P",
                  organization="DAIL_O", selection="DAIL_S", k=4,
                  foreign_keys=True, label="DAIL-SQL (gpt-4)"),
        RunConfig(model="gpt-4", representation="CR_P",
                  label="Zero-shot (gpt-4)"),
        RunConfig(model="llama-33b", representation="CR_P",
                  label="Zero-shot (llama-33b)"),
    ]
    grid = GridRunner(
        context.runner, workers=args.workers or 1, registry=registry
    ).sweep(configs, limit=args.limit)
    reports = list(grid)
    _print_efficiency_rows([r.efficiency_summary() for r in reports])

    # Reconcile: per-cell telemetry was frozen *from* this registry, so
    # the sums must agree to the integer (cost to float epsilon).
    sum_prompt = sum(r.metered_prompt_tokens for r in reports)
    sum_completion = sum(r.metered_completion_tokens for r in reports)
    sum_cost = sum(r.cost_usd for r in reports)
    reg_prompt = int(registry.counter_value(M_LLM_TOKENS, {"kind": "prompt"}))
    reg_completion = int(
        registry.counter_value(M_LLM_TOKENS, {"kind": "completion"})
    )
    reg_cost = registry.counter_value(M_LLM_COST)
    ok = (
        sum_prompt == reg_prompt
        and sum_completion == reg_completion
        and math.isclose(sum_cost, reg_cost, rel_tol=1e-9, abs_tol=1e-12)
    )
    print(
        f"\n/metrics reconciliation: telemetry {sum_prompt}+{sum_completion} "
        f"tokens / ${sum_cost:.6f} vs registry {reg_prompt}+{reg_completion} "
        f"tokens / ${reg_cost:.6f} — {'OK' if ok else 'MISMATCH'}"
    )
    return 0 if ok else 1


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    """Compare two baseline snapshots; exit 1 on regressions."""
    from .obs.baseline import diff_baselines, format_diff, load_baseline

    baseline = load_baseline(args.baseline)
    current = load_baseline(args.current)
    regressions, rows = diff_baselines(
        baseline, current, threshold=args.threshold
    )
    print(format_diff(rows))
    if regressions:
        names = ", ".join(row.metric for row in regressions)
        print(
            f"\n{len(regressions)} regression(s) beyond the "
            f"{args.threshold:g} threshold: {names}",
            file=sys.stderr,
        )
        return 1
    print("\nno regressions")
    return 0


def _lint_entries(args: argparse.Namespace) -> List[tuple]:
    """Resolve the lint inputs into ``(db_id, label, sql)`` triples.

    Three sources: a SQL file, ``-`` for stdin (both need ``--db``), or
    ``--predictions`` pointing at a persisted report (JSON, any
    supported format version) or a record-per-line JSONL file — records
    carry their own ``db_id`` and ``predicted_sql``.
    """
    import json as jsonlib

    from .errors import ReproError

    if args.predictions:
        path = args.source
        try:
            from .eval.persistence import load_report

            report = load_report(path)
            return [
                (r.db_id, r.example_id, r.predicted_sql)
                for r in report.records
            ]
        except ReproError:
            pass  # not a report file — fall through to JSONL
        entries = []
        with open(path, "r", encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                record = jsonlib.loads(line)
                entries.append((
                    str(record["db_id"]),
                    str(record.get("example_id", f"line-{index + 1}")),
                    str(record.get("predicted_sql", record.get("sql", ""))),
                ))
        return entries
    if not args.db:
        raise ReproError("--db is required unless --predictions is given")
    if args.source == "-":
        sql = sys.stdin.read()
        label = "<stdin>"
    else:
        with open(args.source, "r", encoding="utf-8") as handle:
            sql = handle.read()
        label = args.source
    return [(args.db, label, sql)]


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer over SQL and print diagnostics."""
    import json as jsonlib

    from .analysis import analyze, repair
    from .errors import ReproError
    from .experiments.context import get_context
    from .sql.dialect import REFERENCE_DIALECT

    context = get_context(fast=args.fast)

    def schema_for(db_id: str):
        for dataset in (context.dev, context.train):
            if dataset is not None and db_id in dataset.schemas:
                return dataset.schema(db_id)
        raise ReproError(
            f"unknown database id {db_id!r} (not in the benchmark corpus)"
        )

    dialect = getattr(args, "dialect", None)
    outputs = []
    any_fatal = False
    for db_id, label, sql in _lint_entries(args):
        schema = schema_for(db_id)
        result = analyze(schema, sql.strip(), dialect=dialect)
        entry = {
            "source": label,
            "db_id": db_id,
            "analysis": result.to_dict(),
            "fatal": result.fatal,
        }
        # Canonicalization (like repair) assumes the reference grammar.
        if (
            getattr(args, "semantic", False)
            and (dialect or REFERENCE_DIALECT) == REFERENCE_DIALECT
        ):
            from .sql.canonical import canonical_fingerprint, canonicalize
            from .sql.unparse import unparse

            fingerprint = canonical_fingerprint(sql.strip(), schema)
            if fingerprint is not None:
                entry["canonical_sql"] = unparse(
                    canonicalize(sql.strip(), schema)
                )
                entry["fingerprint"] = fingerprint
        # The repair pass rewrites reference-dialect SQL only.
        do_repair = (
            args.repair and (dialect or REFERENCE_DIALECT) == REFERENCE_DIALECT
        )
        if do_repair and result.diagnostics:
            fixed = repair(schema, sql.strip())
            if fixed.changed:
                rechecked = analyze(schema, fixed.sql)
                entry["repaired_sql"] = fixed.sql
                entry["repair_applied"] = list(fixed.applied)
                entry["repaired_analysis"] = rechecked.to_dict()
                entry["fatal"] = rechecked.fatal
        any_fatal = any_fatal or bool(entry["fatal"])
        outputs.append(entry)

    if args.json:
        print(jsonlib.dumps(outputs, indent=1))
        return 1 if any_fatal else 0

    clean = 0
    for entry in outputs:
        diagnostics = entry["analysis"]["diagnostics"]
        if not diagnostics and "repaired_sql" not in entry:
            clean += 1
            if "canonical_sql" in entry:
                print(f"{entry['source']} ({entry['db_id']}): clean")
                print(f"  canonical: {entry['canonical_sql']}")
            continue
        if entry["fatal"]:
            verdict = "FATAL"
        elif "repaired_sql" in entry:
            verdict = "repaired"
        else:
            verdict = "ok"
        print(f"{entry['source']} ({entry['db_id']}): "
              f"{len(diagnostics)} diagnostic(s), {verdict}")
        for diag in diagnostics:
            fix = f" (fix: {diag['fix']})" if diag["fix"] else ""
            print(f"  {diag['severity']}[{diag['rule']}] "
                  f"{diag['message']}{fix}")
        if "canonical_sql" in entry:
            print(f"  canonical: {entry['canonical_sql']}")
        if "repaired_sql" in entry:
            applied = ", ".join(entry["repair_applied"])
            print(f"  repaired [{applied}]: {entry['repaired_sql']}")
            for diag in entry["repaired_analysis"]["diagnostics"]:
                print(f"    after repair: {diag['severity']}"
                      f"[{diag['rule']}] {diag['message']}")
    if clean:
        print(f"{clean} statement(s) clean")
    return 1 if any_fatal else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the HTTP serving layer over the benchmark context."""
    from .eval.harness import RunConfig
    from .serve import build_server

    _apply_cache(args)
    _apply_backend(args)
    _apply_trace(args)
    _apply_feedback_rounds(args)
    config = None
    if args.model or args.k is not None:
        config = RunConfig(
            model=args.model or "gpt-4",
            representation="CR_P",
            organization="DAIL_O",
            selection="DAIL_S" if (args.k is None or args.k > 0) else None,
            k=args.k if args.k is not None else 4,
            foreign_keys=True,
        )
    server = build_server(
        fast=args.fast, host=args.host, port=args.port, config=config,
        access_log_path=args.access_log,
    )
    host, port = server.address
    model = server.service.plan.config.model
    print(f"dail-sql serve: {model} on http://{host}:{port}", file=sys.stderr)
    print(
        "endpoints: POST /v1/generate /v1/lint /v1/execute /v1/explain, "
        "GET /healthz /metrics (Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from .llm.profiles import get_profile, list_models

    for model_id in list_models():
        profile = get_profile(model_id)
        print(
            f"{model_id:18s} family={profile.family:7s} "
            f"scale={profile.scale_b:>7.0f}B alignment={profile.alignment:.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dail-sql",
        description="DAIL-SQL benchmark reproduction (VLDB 2024)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    workers_help = "worker threads for evaluation sweeps (default 1)"
    cache_help = (
        "directory for the persistent artifact cache "
        "(overrides $REPRO_CACHE_DIR; makes reruns incremental)"
    )
    trace_help = (
        "directory for JSONL trace files (overrides $REPRO_TRACE_DIR; "
        "each run streams a span tree readable with `dail-sql trace`)"
    )

    def add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--trace-dir", default=None, help=trace_help)
        group = sub_parser.add_mutually_exclusive_group()
        group.add_argument(
            "--progress", dest="progress", action="store_true", default=None,
            help="force the live status line on stderr on",
        )
        group.add_argument(
            "--no-progress", dest="progress", action="store_false",
            help="suppress the live status line (default follows the TTY)",
        )

    repair_help = (
        "enable the analyzer's deterministic repair pass: predictions "
        "with diagnostics are rewritten (schema-spelled identifiers, "
        "qualified columns, trailing junk dropped) before execution"
    )

    def add_repair_flag(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--repair", action="store_true", help=repair_help
        )
        sub_parser.add_argument(
            "--feedback-rounds", type=int, default=None, metavar="N",
            help="enable the execution-feedback repair loop: candidates "
                 "that die (fatal lint diagnostic or execution error) "
                 "are regenerated from their structured diagnostics, up "
                 "to N rounds per example (0 disables; deterministic "
                 "and fully cached/journaled)",
        )

    def add_backend_flag(sub_parser: argparse.ArgumentParser) -> None:
        from .db.backends import backend_names

        sub_parser.add_argument(
            "--backend", default=None, choices=backend_names(),
            help="execution backend for evaluation pools: the SQLite "
                 "reference, DuckDB (needs the duckdb package), or a "
                 "dialect-profile emulation (postgres/mysql/tsql); "
                 "cache and journal entries stay disjoint per backend",
        )

    def add_resilience_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--journal", default=None, metavar="PATH",
            help="checkpoint completed records to this JSONL journal; "
                 "an interrupted sweep can then restart with --resume",
        )
        sub_parser.add_argument(
            "--resume", action="store_true",
            help="resume from the --journal file: already-journaled "
                 "examples are skipped, the report is byte-identical to "
                 "an uninterrupted run",
        )
        sub_parser.add_argument(
            "--chaos", type=float, default=None, metavar="RATE",
            help="inject deterministic faults (transient API errors, "
                 "locked databases, corrupt cache artifacts) at this "
                 "per-decision rate in [0,1] — a seeded resilience drill",
        )
        sub_parser.add_argument(
            "--chaos-seed", type=int, default=0, metavar="N",
            help="seed of the --chaos fault schedule (same seed, same faults)",
        )

    p_exp = sub.add_parser("experiment", help="run one paper table/figure")
    p_exp.add_argument("artifact", help="e.g. table1, figure4")
    p_exp.add_argument("--fast", action="store_true")
    p_exp.add_argument("--limit", type=int, default=None)
    p_exp.add_argument("--workers", type=int, default=None, help=workers_help)
    p_exp.add_argument("--cache-dir", default=None, help=cache_help)
    add_obs_flags(p_exp)
    add_repair_flag(p_exp)
    add_backend_flag(p_exp)
    add_resilience_flags(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_all = sub.add_parser("experiments", help="run every paper artifact")
    p_all.add_argument("--fast", action="store_true")
    p_all.add_argument("--limit", type=int, default=None)
    p_all.add_argument("--workers", type=int, default=None, help=workers_help)
    p_all.add_argument("--cache-dir", default=None, help=cache_help)
    add_obs_flags(p_all)
    add_repair_flag(p_all)
    add_backend_flag(p_all)
    add_resilience_flags(p_all)
    p_all.set_defaults(func=_cmd_experiments)

    p_gen = sub.add_parser("generate", help="write the synthetic corpus")
    p_gen.add_argument("output", help="output directory")
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.add_argument("--train-per-db", type=int, default=30)
    p_gen.add_argument("--dev-per-db", type=int, default=24)
    p_gen.add_argument(
        "--databases", action="store_true",
        help="also write SQLite files in the full Spider layout",
    )
    p_gen.set_defaults(func=_cmd_generate)

    p_cmp = sub.add_parser(
        "compare",
        help="paired significance test between two configurations "
             "(spec: model:representation[:selection+organization@k])",
    )
    p_cmp.add_argument("a", help="e.g. gpt-4:CR_P:DAIL_S+DAIL_O@5")
    p_cmp.add_argument("b", help="e.g. gpt-4:CR_P")
    p_cmp.add_argument("--fast", action="store_true")
    p_cmp.add_argument("--limit", type=int, default=None)
    p_cmp.add_argument("--workers", type=int, default=None, help=workers_help)
    p_cmp.add_argument("--cache-dir", default=None, help=cache_help)
    add_obs_flags(p_cmp)
    add_repair_flag(p_cmp)
    add_backend_flag(p_cmp)
    add_resilience_flags(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_ask = sub.add_parser("ask", help="run DAIL-SQL on one question")
    p_ask.add_argument("db", help="database id, e.g. concert_singer")
    p_ask.add_argument("question")
    p_ask.add_argument("--model", default="gpt-4")
    p_ask.add_argument("--k", type=int, default=5)
    p_ask.add_argument("--fast", action="store_true")
    p_ask.set_defaults(func=_cmd_ask)

    p_val = sub.add_parser(
        "validate", help="validate a Spider-layout directory"
    )
    p_val.add_argument("directory")
    p_val.add_argument("--max-problems", type=int, default=20)
    p_val.set_defaults(func=_cmd_validate)

    p_report = sub.add_parser(
        "report", help="regenerate all artifacts into a Markdown report"
    )
    p_report.add_argument("output", help="output .md path")
    p_report.add_argument("--fast", action="store_true")
    p_report.add_argument("--limit", type=int, default=None)
    p_report.add_argument("--paper-only", action="store_true",
                          help="skip the supplementary analyses")
    p_report.add_argument("--workers", type=int, default=None,
                          help=workers_help)
    p_report.add_argument("--cache-dir", default=None, help=cache_help)
    add_obs_flags(p_report)
    add_repair_flag(p_report)
    add_backend_flag(p_report)
    add_resilience_flags(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_lint = sub.add_parser(
        "lint",
        help="run the schema-aware static analyzer over SQL",
        description=(
            "Analyze SQL against a benchmark database schema.  Reads a "
            ".sql file, stdin (source '-'), or — with --predictions — a "
            "persisted report JSON / records JSONL whose entries carry "
            "their own db_id.  Exit code 1 when any fatal diagnostic "
            "fired, 0 otherwise."
        ),
    )
    p_lint.add_argument(
        "source",
        help="SQL file path, '-' for stdin, or a predictions file "
             "(with --predictions)",
    )
    p_lint.add_argument(
        "--db", default=None,
        help="database id the SQL targets, e.g. concert_singer "
             "(required unless --predictions)",
    )
    p_lint.add_argument(
        "--predictions", action="store_true",
        help="treat SOURCE as a persisted report (JSON) or "
             "record-per-line JSONL; each record's own db_id is used",
    )
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    p_lint.add_argument("--repair", action="store_true",
                        help="also run the deterministic repair pass and "
                             "show the rewritten SQL + its re-analysis")
    p_lint.add_argument("--semantic", action="store_true",
                        help="also show each statement's canonical "
                             "logical form and equivalence-class "
                             "fingerprint (sem:* satisfiability rules "
                             "run either way; reference dialect only)")
    from .sql.dialect import REFERENCE_DIALECT, dialect_names

    p_lint.add_argument("--dialect", default=REFERENCE_DIALECT,
                        choices=dialect_names(),
                        help="SQL dialect the statements are written in "
                             "(dialect-specific rules apply, e.g. "
                             "double-quoted string literals are fatal on "
                             "postgres); default %(default)s")
    p_lint.add_argument("--fast", action="store_true",
                        help="use the reduced benchmark corpus")
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve",
        help="serve text-to-SQL over HTTP/JSON",
        description=(
            "Boot a long-lived HTTP service over the benchmark context: "
            "POST /v1/generate, /v1/lint, /v1/execute, /v1/explain plus "
            "GET /healthz and /metrics (Prometheus text).  Generations "
            "are coalesced into batches, rate-limited per tenant, and "
            "share the artifact cache with batch sweeps — pass "
            "--cache-dir to serve from (and extend) a warmed disk cache."
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="bind port (0 picks a free port)")
    p_serve.add_argument("--model", default=None,
                         help="model profile to serve (default gpt-4)")
    p_serve.add_argument("--k", type=int, default=None,
                         help="in-context examples per prompt "
                              "(0 for zero-shot; default 4)")
    p_serve.add_argument("--fast", action="store_true",
                         help="use the reduced benchmark corpus")
    p_serve.add_argument("--cache-dir", default=None, help=cache_help)
    p_serve.add_argument("--trace-dir", default=None, help=trace_help)
    p_serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one JSON line per request (request id, tenant, "
             "status, latency, tokens) to this file; off by default",
    )
    p_serve.add_argument(
        "--feedback-rounds", type=int, default=None, metavar="N",
        help="server default for the execution-feedback repair loop on "
             "/v1/generate (requests may override per call via the wire "
             "'feedback_rounds' field)",
    )
    add_backend_flag(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_models = sub.add_parser("models", help="list model profiles")
    p_models.set_defaults(func=_cmd_models)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk artifact cache"
    )
    p_cache.add_argument(
        "action", choices=("stats", "clear"),
        help="stats: entries/bytes/hit-rates by stage; clear: wipe it",
    )
    p_cache.add_argument("--cache-dir", default=None, help=cache_help)
    p_cache.set_defaults(func=_cmd_cache)

    p_trace = sub.add_parser(
        "trace", help="analyse a run's JSONL trace file"
    )
    p_trace.add_argument(
        "action",
        choices=("summary", "slowest", "errors", "export", "correlate"),
        help="summary: stage/hardness/cell tables; slowest: top spans by "
             "duration; errors: failures grouped by error class; export: "
             "Prometheus text snapshot; correlate: one serving request's "
             "full span tree by request id",
    )
    p_trace.add_argument(
        "trace",
        help="trace .jsonl file, or a directory of them (a --trace-dir); "
             "for `correlate`, the request id (X-Request-Id) instead",
    )
    p_trace.add_argument(
        "path", nargs="?", default=None,
        help="for `correlate`: trace file/directory to search "
             "(default: the configured trace directory)",
    )
    p_trace.add_argument("--top", type=int, default=10,
                         help="rows to show (slowest/errors)")
    p_trace.add_argument("--kind", default="example",
                         choices=("run", "cell", "example", "stage"),
                         help="span kind ranked by `slowest`")
    p_trace.add_argument("--prometheus", action="store_true",
                         help="export format (currently the only one)")
    p_trace.add_argument("-o", "--output", default=None,
                         help="write `export` output to a file")
    p_trace.set_defaults(func=_cmd_trace)

    p_obs = sub.add_parser(
        "obs",
        help="observability v2: cost/efficiency report, baseline diff",
        description=(
            "Cross-cutting observability tools: `report` prints the "
            "EX-per-token efficiency view (from persisted reports, or a "
            "live smoke sweep whose telemetry is verified against the "
            "metrics registry); `diff` compares two BENCH_*.json "
            "baseline snapshots and exits 1 on regressions."
        ),
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_report = obs_sub.add_parser(
        "report",
        help="EX next to metered tokens / simulated cost per system",
    )
    p_obs_report.add_argument(
        "reports", nargs="?", default=None,
        help="directory of persisted report JSON files; omitted → run a "
             "live smoke sweep and reconcile telemetry against /metrics",
    )
    p_obs_report.add_argument("--fast", action="store_true",
                              help="use the reduced benchmark corpus")
    p_obs_report.add_argument("--limit", type=int, default=None,
                              help="examples per config in live mode")
    p_obs_report.add_argument("--workers", type=int, default=None,
                              help=workers_help)
    p_obs_report.add_argument("--cache-dir", default=None, help=cache_help)
    p_obs_report.set_defaults(func=_cmd_obs_report)
    p_obs_diff = obs_sub.add_parser(
        "diff", help="compare two baseline snapshots (exit 1 on regression)"
    )
    p_obs_diff.add_argument("baseline", help="reference BENCH_*.json")
    p_obs_diff.add_argument("current", help="candidate BENCH_*.json")
    p_obs_diff.add_argument(
        "--threshold", type=float, default=0.1,
        help="allowed relative slip per gated metric (default %(default)s)",
    )
    p_obs_diff.set_defaults(func=_cmd_obs_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
