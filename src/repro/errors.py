"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SQLSyntaxError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Attributes:
        sql: the offending SQL text.
        position: best-effort token index where parsing failed, or ``None``.
    """

    def __init__(self, message: str, sql: str = "", position: int | None = None):
        super().__init__(message)
        self.sql = sql
        self.position = position


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions (unknown table/column,
    dangling foreign key, duplicate names, ...)."""


class DatasetError(ReproError):
    """Raised for malformed Spider-format files or corpus-generation issues."""


class ExecutionError(ReproError):
    """Raised when a query cannot be executed against a database.

    Attributes:
        transient: whether the failure is plausibly temporary (a locked
            or busy database) and a retry could succeed, as opposed to a
            deterministic failure (bad SQL, missing table).
    """

    def __init__(self, message: str, transient: bool = False):
        super().__init__(message)
        self.transient = transient


class PromptError(ReproError):
    """Raised for invalid prompt-construction requests (unknown
    representation/organization, over-budget prompts that cannot shrink)."""


class ModelError(ReproError):
    """Raised for unknown model ids or invalid generation requests."""


class CircuitOpenError(ModelError):
    """Raised when a generation is refused because the LLM client's
    circuit breaker is open: the backend failed repeatedly just now, so
    the client fails fast instead of burning a full retry/backoff cycle
    per example.  Callers treat it like any other isolated failure (the
    engine records it with ``error_class == "CircuitOpenError"``)."""


class EvaluationError(ReproError):
    """Raised when an evaluation cannot be computed (mismatched lengths,
    missing gold data)."""


class ExperimentError(ReproError):
    """Raised for invalid experiment configurations."""
