"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SQLSyntaxError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Attributes:
        sql: the offending SQL text.
        position: best-effort token index where parsing failed, or ``None``.
    """

    def __init__(self, message: str, sql: str = "", position: int | None = None):
        super().__init__(message)
        self.sql = sql
        self.position = position


class DialectError(ReproError):
    """Raised for unknown SQL dialect/backend names or transpilation
    requests outside the supported grammar subset."""


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions (unknown table/column,
    dangling foreign key, duplicate names, ...)."""


class DatasetError(ReproError):
    """Raised for malformed Spider-format files or corpus-generation issues."""


class ExecutionError(ReproError):
    """Raised when a query cannot be executed against a database.

    Attributes:
        transient: whether the failure is plausibly temporary (a locked
            or busy database) and a retry could succeed, as opposed to a
            deterministic failure (bad SQL, missing table).
    """

    def __init__(self, message: str, transient: bool = False):
        super().__init__(message)
        self.transient = transient


class PromptError(ReproError):
    """Raised for invalid prompt-construction requests (unknown
    representation/organization, over-budget prompts that cannot shrink)."""


class ModelError(ReproError):
    """Raised for unknown model ids or invalid generation requests."""


class CircuitOpenError(ModelError):
    """Raised when a generation is refused because the LLM client's
    circuit breaker is open: the backend failed repeatedly just now, so
    the client fails fast instead of burning a full retry/backoff cycle
    per example.  Callers treat it like any other isolated failure (the
    engine records it with ``error_class == "CircuitOpenError"``)."""


class EvaluationError(ReproError):
    """Raised when an evaluation cannot be computed (mismatched lengths,
    missing gold data)."""


class ExperimentError(ReproError):
    """Raised for invalid experiment configurations."""


class ServeError(ReproError):
    """Base class for serving-layer failures (``repro.serve``).

    Subclasses map one-to-one onto HTTP status codes in the server, so
    the service layer stays transport-agnostic: it raises these, and
    only the HTTP handler knows about status lines.
    """


class WireFormatError(ServeError):
    """Raised when a request body does not fit the versioned wire schema
    (missing field, wrong type, unknown key, unsupported version).
    Maps to HTTP 400."""


class RateLimitedError(ServeError):
    """Raised when a tenant's token bucket is empty.  Maps to HTTP 429.

    Attributes:
        retry_after_s: seconds until the bucket refills enough for one
            request (the ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ServeError):
    """Raised when a request's deadline budget expires before the work
    completes.  Maps to HTTP 504."""


class UnsafeSqlError(ServeError):
    """Raised when the analyzer's safety gate refuses to execute a
    statement (not a single read-only SELECT, or fatally diagnosed).
    Maps to HTTP 422; carries the diagnostics for the error payload.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])
