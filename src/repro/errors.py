"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SQLSyntaxError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Attributes:
        sql: the offending SQL text.
        position: best-effort token index where parsing failed, or ``None``.
    """

    def __init__(self, message: str, sql: str = "", position: int | None = None):
        super().__init__(message)
        self.sql = sql
        self.position = position


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions (unknown table/column,
    dangling foreign key, duplicate names, ...)."""


class DatasetError(ReproError):
    """Raised for malformed Spider-format files or corpus-generation issues."""


class ExecutionError(ReproError):
    """Raised when a query cannot be executed against a database."""


class PromptError(ReproError):
    """Raised for invalid prompt-construction requests (unknown
    representation/organization, over-budget prompts that cannot shrink)."""


class ModelError(ReproError):
    """Raised for unknown model ids or invalid generation requests."""


class EvaluationError(ReproError):
    """Raised when an evaluation cannot be computed (mismatched lengths,
    missing gold data)."""


class ExperimentError(ReproError):
    """Raised for invalid experiment configurations."""
