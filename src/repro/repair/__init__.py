"""Execution-feedback repair: bounded retry-with-diagnostics loops.

The analyzer and executor already *describe* failures precisely — rule
ids, spans, suggested fixes, structured ``exec:*`` error classes.  This
package closes the loop: it renders those descriptions into a feedback
turn, re-generates, and keeps the best candidate seen, under strict
determinism rules (feedback prompts are content-fingerprinted, so
repaired candidates live in the artifact cache and run journal like any
other generation).

Modules:

* :mod:`repro.repair.taxonomy` — the transient-vs-deterministic
  ``exec:*`` error-class split shared by the executor, the repair loop
  and error analysis.
* :mod:`repro.repair.feedback` — deterministic, token-budgeted
  rendering of diagnostics into a feedback prompt turn.
"""

from .feedback import (
    FEEDBACK_MARKER,
    FEEDBACK_TOKEN_BUDGET,
    MAX_FEEDBACK_ROUNDS,
    feedback_prompt,
    render_feedback,
)
from .taxonomy import (
    EXEC_ERROR_PREFIX,
    REPAIR_EXHAUSTED,
    TRANSIENT_CLASS,
    classify_execution_error,
    is_transient_class,
)

__all__ = [
    "EXEC_ERROR_PREFIX",
    "FEEDBACK_MARKER",
    "FEEDBACK_TOKEN_BUDGET",
    "MAX_FEEDBACK_ROUNDS",
    "REPAIR_EXHAUSTED",
    "TRANSIENT_CLASS",
    "classify_execution_error",
    "feedback_prompt",
    "is_transient_class",
    "render_feedback",
]
