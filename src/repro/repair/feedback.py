"""Deterministic rendering of failure diagnostics into a feedback turn.

One feedback round appends a structured block to the original prompt:
the failing SQL, the executor's ``exec:*`` class, and the analyzer's
diagnostics (rule id, severity, span, suggested fix), followed by a
regeneration instruction.  The block is pure text — its content *is*
the cache key of the regenerated candidate, so identical failures
produce identical feedback prompts and hence identical repaired
candidates, serially, in parallel, and across processes.

Two hard properties:

* **Bounded.** The rendered block never exceeds
  :data:`FEEDBACK_TOKEN_BUDGET` tokens (measured with the same
  :class:`~repro.tokenizer.counter.TokenCounter` the prompt builder
  uses).  Diagnostics are dropped whole from the tail — never truncated
  mid-entry — and the failing SQL is elided before the instruction is,
  so wide-schema databases with dozens of findings cannot blow the
  prompt window.
* **Deterministic.** Rendering depends only on its arguments.  The
  round number is part of the text, so round 2's prompt differs from
  round 1's even when the diagnostics repeat — each round gets an
  independent generation draw and an independent cache slot.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..prompt.builder import Prompt
from ..tokenizer.counter import TokenCounter

#: Sentinel line opening every feedback block.  The simulated LLM keys
#: its feedback-uptake term on this marker, and tests grep for it.
FEEDBACK_MARKER = "### Execution feedback"

#: Token ceiling for one rendered feedback block.
FEEDBACK_TOKEN_BUDGET = 256

#: Ceiling on ``--feedback-rounds`` / wire ``feedback_rounds`` — the
#: point of the loop is a *bounded* cycle, and past a handful of rounds
#: the simulated (and, per ExeSQL, the real) recovery curve is flat.
MAX_FEEDBACK_ROUNDS = 5

#: Per-example ceiling on tokens spent across all feedback rounds
#: (feedback prompt + completion); deterministic, so the budget cuts the
#: loop at the same round serially and in parallel.
FEEDBACK_EXAMPLE_TOKEN_BUDGET = 4096

#: Module-shared counter (bounded thread-safe LRU; see PromptBuilder).
_COUNTER = TokenCounter()


def render_feedback(
    sql: str,
    error_class: str,
    diagnostics: Sequence[Dict[str, object]] = (),
    round_index: int = 1,
    counter: Optional[TokenCounter] = None,
    max_tokens: int = FEEDBACK_TOKEN_BUDGET,
) -> str:
    """The feedback block for one failed candidate.

    Args:
        sql: the SQL that failed (analyzer-final text).
        error_class: structured failure class (``lint:<rule>`` or
            ``exec:<kind>``; "" renders as ``unknown``).
        diagnostics: serialised analyzer diagnostics (rule, severity,
            message, span, fix), rendered in order until the token
            budget is reached.
        round_index: 1-based feedback round (part of the text, so each
            round's prompt is content-distinct).
        counter: token counter (module-shared memo by default).
        max_tokens: block-level token ceiling.
    """
    counter = counter or _COUNTER
    header = f"{FEEDBACK_MARKER} (round {round_index})"
    instruction = (
        "Rewrite the SQL to fix the problems above. "
        "Respond with the corrected SQL only."
    )
    failure = f"The previous SQL failed [{error_class or 'unknown'}]."

    # The skeleton (header + failure class + instruction) always fits;
    # the SQL echo and the diagnostics compete for what remains.
    lines: List[str] = [header, failure]
    skeleton_cost = counter.count("\n".join(lines + [instruction]))
    budget = max_tokens - skeleton_cost

    sql_line = f"SQL: {sql}"
    sql_cost = counter.count(sql_line) + 1
    if sql and sql_cost <= budget:
        lines.append(sql_line)
        budget -= sql_cost

    for entry in diagnostics:
        line = _diagnostic_line(entry)
        cost = counter.count(line) + 1
        if cost > budget:
            break  # drop the tail whole — never mid-entry
        lines.append(line)
        budget -= cost

    lines.append(instruction)
    return "\n".join(lines)


def _diagnostic_line(entry: Dict[str, object]) -> str:
    """One diagnostic as a stable single line (mirrors Diagnostic.format)."""
    rule = str(entry.get("rule", ""))
    severity = str(entry.get("severity", ""))
    message = str(entry.get("message", ""))
    text = f"- {severity}[{rule}] {message}"
    span = entry.get("span") or ()
    if isinstance(span, (list, tuple)) and len(span) == 2 and span != [0, 0] \
            and tuple(span) != (0, 0):
        text += f" @ {int(span[0])}..{int(span[1])}"
    fix = str(entry.get("fix", ""))
    if fix:
        text += f" (fix: {fix})"
    return text


def feedback_prompt(
    prompt: Prompt,
    sql: str,
    error_class: str,
    diagnostics: Sequence[Dict[str, object]] = (),
    round_index: int = 1,
    counter: Optional[TokenCounter] = None,
) -> Prompt:
    """The original prompt extended with one feedback block.

    The returned prompt shares every structured field with the original
    (schema, examples, flags — the outcome model still sees them) but
    carries the new text and its token count, so generation artifacts
    key on the feedback content automatically.
    """
    counter = counter or _COUNTER
    block = render_feedback(
        sql, error_class, diagnostics,
        round_index=round_index, counter=counter,
    )
    text = f"{prompt.text}\n\n{block}"
    return dataclasses.replace(
        prompt, text=text, token_count=counter.count(text)
    )
