"""The structured execution error-class taxonomy.

``error_class`` values follow three conventions across the codebase:
exception type names for engine faults, ``lint:<rule>`` for analyzer
gates, and — since the repair loop landed — ``exec:<kind>`` for
execution failures.  The executor-side split matters because the two
halves need opposite handling:

* **transient** classes (:data:`TRANSIENT_CLASS`) describe infrastructure
  conditions — a locked or busy database, an injected chaos fault.  A
  retry of the *same* SQL could succeed; regenerating different SQL is
  pointless.  The repair loop retries these in place and never charges
  them against the feedback-round budget, and error-analysis cross-tabs
  keep them out of the model-error columns.
* **deterministic** classes (``exec:no-such-column`` and friends)
  describe properties of the SQL itself.  Retrying identically is
  pointless; feeding the diagnosis back into generation is exactly what
  the repair loop is for.

:data:`REPAIR_EXHAUSTED` marks records whose repair loop ran out of
rounds (or budget) without producing a cleanly-executing candidate; the
per-round classes remain on the record's ``repair_round_classes``.
"""

from __future__ import annotations

#: ``error_class`` prefix for execution failures (mirrors the analyzer's
#: ``lint:`` prefix convention).
EXEC_ERROR_PREFIX = "exec"

#: The transient execution class: locked/busy database, injected chaos
#: fault — conditions a retry of the same SQL could clear.
TRANSIENT_CLASS = "exec:locked"

#: Stamped on records whose feedback-repair loop exhausted its round or
#: token budget without recovering a cleanly-executing candidate.
REPAIR_EXHAUSTED = "repair:exhausted"

#: Deterministic failure fragments, checked in order against the
#: lower-cased executor message.  SQLite spells these stably ("no such
#: column: x", "ambiguous column name: y", 'near "FROM": syntax error'),
#: and the emulated dialect backends reuse the reference executor, so
#: fragment matching is portable across every pool flavor.
_DETERMINISTIC_FRAGMENTS = (
    ("no such column", "exec:no-such-column"),
    ("no such table", "exec:no-such-table"),
    ("ambiguous column", "exec:ambiguous-column"),
    ("syntax error", "exec:syntax"),
    ("no such function", "exec:no-such-function"),
    ("more than", "exec:row-budget"),
)


def classify_execution_error(message: str, transient: bool = False) -> str:
    """The ``exec:*`` class of one execution failure.

    Args:
        message: the :class:`~repro.errors.ExecutionError` text.
        transient: the error's transient flag — set by the sqlite
            backend for locked/busy conditions and by the chaos layer
            for injected database faults.  Transient wins over any
            message fragment: an injected "database is locked" must
            never be misfiled as a model error.
    """
    if transient:
        return TRANSIENT_CLASS
    lowered = message.lower()
    for fragment, error_class in _DETERMINISTIC_FRAGMENTS:
        if fragment in lowered:
            return error_class
    return "exec:error"


def is_transient_class(error_class: str) -> bool:
    """True when ``error_class`` names an infrastructure condition the
    repair loop should retry in place rather than regenerate around."""
    return error_class == TRANSIENT_CLASS
