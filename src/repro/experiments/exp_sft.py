"""Tables 7 & 8 — task-specific supervised fine-tuning of open-source LLMs.

Table 7: fine-tune LLaMA-7B/13B on the train split once per question
representation, evaluate zero-shot with the same representation.

Table 8: take the fine-tuned LLaMA-13B and add in-context examples
(k ∈ {0, 1, 3, 5}), compared to the un-tuned model.

Paper shape (Table 7): SFT lifts open-source models dramatically, and the
*representation used for tuning matters* — plain formats (TR_P / AS_P)
tune better than instruction-heavy ones (OD_P).
Paper shape (Table 8): after SFT, in-context examples stop helping —
zero-shot is the best setting for a fine-tuned model (ICL capability
degrades).
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..llm.finetune import finetune
from ..prompt.representation import REPRESENTATION_IDS
from .base import ExperimentResult
from .context import get_context

SFT_MODELS = ("llama-7b", "llama-13b")
SHOT_COUNTS = (0, 1, 3, 5)


def run_representation_table(
    fast: bool = False, limit: Optional[int] = None
) -> ExperimentResult:
    """Table 7: SFT per representation, zero-shot evaluation."""
    context = get_context(fast)
    configs = []
    for rep_id in REPRESENTATION_IDS:
        for model in SFT_MODELS:
            state, _report = finetune(model, context.train, rep_id)
            configs.append(RunConfig(
                model=model, representation=rep_id,
                label=f"{rep_id}/{model}/base"))
            configs.append(RunConfig(
                model=model, representation=rep_id, sft_state=state,
                label=f"{rep_id}/{model}/sft"))
    grid = context.sweep(configs, limit=limit)
    rows: List[dict] = []
    for rep_id in REPRESENTATION_IDS:
        row = {"representation": rep_id}
        for model in SFT_MODELS:
            baseline = grid[f"{rep_id}/{model}/base"]
            tuned = grid[f"{rep_id}/{model}/sft"]
            row[f"{model} base"] = percent(baseline.execution_accuracy)
            row[f"{model} SFT"] = percent(tuned.execution_accuracy)
        rows.append(row)
    return ExperimentResult(
        artifact_id="table7",
        title="Table 7: zero-shot EX before/after SFT, per representation (%)",
        rows=rows,
        notes=(
            "SFT lifts open-source models dramatically; plain formats "
            "(TR_P/AS_P) fine-tune best, OD_P worst."
        ),
    )


def run_icl_table(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    """Table 8: in-context examples after SFT (ICL degradation)."""
    context = get_context(fast)
    model = "llama-13b"
    rep_id = "TR_P"
    state, _report = finetune(model, context.train, rep_id)
    configs = []
    for k in SHOT_COUNTS:
        configs.append(RunConfig(
            model=model, representation=rep_id, organization="FI_O",
            selection="DAIL_S" if k > 0 else None, k=k,
            label=f"k={k}/base",
        ))
        configs.append(RunConfig(
            model=model, representation=rep_id, organization="FI_O",
            selection="DAIL_S" if k > 0 else None, k=k, sft_state=state,
            label=f"k={k}/sft",
        ))
    grid = context.sweep(configs, limit=limit)
    rows: List[dict] = []
    for k in SHOT_COUNTS:
        base = grid[f"k={k}/base"]
        tuned = grid[f"k={k}/sft"]
        rows.append({
            "k": k,
            f"{model} EX": percent(base.execution_accuracy),
            f"{model}+SFT EX": percent(tuned.execution_accuracy),
        })
    return ExperimentResult(
        artifact_id="table8",
        title="Table 8: in-context learning after SFT (EX %, LLaMA-13B)",
        rows=rows,
        notes=(
            "Untuned model improves with k; after SFT examples stop "
            "helping and mildly hurt — zero-shot is best post-SFT."
        ),
    )


def run(fast: bool = False, limit: Optional[int] = None):
    """Both SFT tables."""
    return [
        run_representation_table(fast=fast, limit=limit),
        run_icl_table(fast=fast, limit=limit),
    ]


if __name__ == "__main__":
    for result in run():
        print(result.render())
        print()
