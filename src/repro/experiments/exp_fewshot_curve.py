"""Figure 6 — execution accuracy vs number of in-context examples.

Sweeps k ∈ {0, 1, 3, 5, 7, 9} for GPT-4, GPT-3.5-TURBO and Vicuna-33B,
with DAIL selection, comparing FI_O (token-hungry) and DAIL_O (compact)
organizations.

Paper shape: accuracy rises with k then saturates; weaker models show an
inverted-U once prompts grow long (context burden outweighs example
benefit) — Chang et al.'s "sweet spot" the paper discusses.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.figures import ascii_lines
from ..eval.harness import RunConfig
from ..eval.reporting import percent
from .base import ExperimentResult
from .context import get_context

MODELS = ("gpt-4", "gpt-3.5-turbo", "vicuna-33b")
SHOT_COUNTS = (0, 1, 3, 5, 7, 9)


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    cells = [
        (model, org_id, k)
        for model in MODELS
        for org_id in ("FI_O", "DAIL_O")
        for k in SHOT_COUNTS
    ]
    grid = context.sweep(
        [
            RunConfig(
                model=model, representation="CR_P", organization=org_id,
                selection="DAIL_S" if k > 0 else None, k=k,
                label=f"{model}/{org_id}@{k}",
            )
            for model, org_id, k in cells
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for model, org_id, k in cells:
        report = grid[f"{model}/{org_id}@{k}"]
        rows.append({
            "model": model,
            "organization": org_id,
            "k": k,
            "avg prompt tokens": round(report.avg_prompt_tokens, 1),
            "EX": percent(report.execution_accuracy),
        })
    chart = ascii_lines(
        [{"k": r["k"], "EX": r["EX"],
          "series": f"{r['model']}/{r['organization']}"} for r in rows],
        x="k", y="EX", series="series",
        title="EX vs k (series: model/organization)",
    )
    return ExperimentResult(
        artifact_id="figure6",
        title="Figure 6: EX vs number of examples k",
        rows=rows,
        chart=chart,
        notes=(
            "Gains saturate in k; weak models on FI_O show an inverted-U "
            "as prompt length starts to hurt."
        ),
    )


if __name__ == "__main__":
    print(run().render())
