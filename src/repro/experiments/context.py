"""Shared experiment context: corpus + runner, built once and cached.

Every experiment driver and benchmark evaluates against the same generated
benchmark (seed-pinned), so numbers are comparable across tables and runs.
``fast=True`` shrinks the corpus for smoke tests and CI.

Drivers evaluate grids through :meth:`ExperimentContext.sweep`, which
routes through the parallel :class:`~repro.eval.engine.GridRunner`.  The
worker count defaults to 1 (deterministic either way) and is raised
globally via :func:`set_default_workers` — the CLI's ``--workers`` flag —
or the ``REPRO_WORKERS`` environment variable.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..dataset.generator.corpus import Corpus, CorpusConfig, build_corpus
from ..dataset.spider import SpiderDataset
from ..eval.engine import GridResult, GridRunner
from ..eval.harness import BenchmarkRunner, RunConfig

#: Seed of the canonical benchmark corpus.
BENCHMARK_SEED = 7

#: Canonical corpus size (144 dev questions over 6 unseen databases,
#: 600 cross-domain candidates over 20 databases).
FULL_CONFIG = CorpusConfig(seed=BENCHMARK_SEED, train_per_db=30, dev_per_db=24)

#: Reduced corpus for smoke tests.
FAST_CONFIG = CorpusConfig(seed=BENCHMARK_SEED, train_per_db=10, dev_per_db=6)


def _initial_workers() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


_DEFAULT_WORKERS = _initial_workers()


def set_default_workers(workers: int) -> None:
    """Set the worker count every subsequent experiment sweep uses."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(workers))


def default_workers() -> int:
    """Worker count experiment sweeps run with (see module docstring)."""
    return _DEFAULT_WORKERS


#: Tri-state progress policy: None = auto (stderr is a terminal).
_DEFAULT_PROGRESS: Optional[bool] = None

#: Chaos policy applied to runners built by :func:`get_context`
#: (``--chaos``); ``None`` = clean runs.
_DEFAULT_CHAOS = None

#: Journal configuration for sweeps (``--journal`` / ``--resume``):
#: (path, resume) plus the lazily-built process-wide journal, shared so
#: consecutive sweeps of one invocation append to one file instead of
#: re-truncating it.
_JOURNAL_PATH: Optional[str] = None
_JOURNAL_RESUME: bool = False
_JOURNAL = None


def set_default_chaos(policy) -> None:
    """Apply a :class:`~repro.resilience.chaos.ChaosPolicy` to every
    subsequently built context (the CLI's ``--chaos`` flag).  Cached
    contexts are dropped: their runners were built without the policy.
    """
    global _DEFAULT_CHAOS
    _DEFAULT_CHAOS = policy
    clear_cache()


def default_chaos():
    """The active chaos policy, or ``None`` for clean runs."""
    return _DEFAULT_CHAOS


#: Execution backend for pools built by :func:`get_context`
#: (``--backend``); ``None`` = the SQLite reference backend.
_DEFAULT_BACKEND: Optional[str] = None


def set_default_backend(name: Optional[str]) -> None:
    """Pick the execution backend every subsequently built context uses
    (the CLI's ``--backend`` flag).  Cached contexts are dropped: their
    pools were built against another backend.

    Raises:
        DialectError: for unknown backend names.
    """
    global _DEFAULT_BACKEND
    if name is not None:
        from ..db.backends import get_backend

        get_backend(name)  # validate eagerly
    _DEFAULT_BACKEND = name
    clear_cache()


def default_backend() -> Optional[str]:
    """The active backend name, or ``None`` for the SQLite reference."""
    return _DEFAULT_BACKEND


#: Analyzer repair pass applied to runners built by :func:`get_context`
#: (``--repair``); ``False`` = score predictions as extracted.
_DEFAULT_REPAIR = False


def set_default_repair(enabled: bool) -> None:
    """Enable the analyzer's deterministic repair pass on every
    subsequently built context (the CLI's ``--repair`` flag).  Cached
    contexts are dropped: their pipelines were built without it.
    """
    global _DEFAULT_REPAIR
    _DEFAULT_REPAIR = bool(enabled)
    clear_cache()


def default_repair() -> bool:
    """Whether the analyzer repair pass is active for new contexts."""
    return _DEFAULT_REPAIR


#: Execution-feedback repair rounds for runners built by
#: :func:`get_context` (``--feedback-rounds``); 0 = loop disabled.
_DEFAULT_FEEDBACK_ROUNDS = 0


def set_default_feedback_rounds(rounds: int) -> None:
    """Set the execution-feedback round budget on every subsequently
    built context (the CLI's ``--feedback-rounds`` flag).  Cached
    contexts are dropped: their pipelines were built without it.
    """
    global _DEFAULT_FEEDBACK_ROUNDS
    _DEFAULT_FEEDBACK_ROUNDS = max(0, int(rounds))
    clear_cache()


def default_feedback_rounds() -> int:
    """The execution-feedback round budget for new contexts."""
    return _DEFAULT_FEEDBACK_ROUNDS


def set_default_journal(path: Optional[str], resume: bool = False) -> None:
    """Configure run journaling for subsequent sweeps (the CLI's
    ``--journal``/``--resume`` flags).  ``None`` disables it."""
    global _JOURNAL_PATH, _JOURNAL_RESUME, _JOURNAL
    if _JOURNAL is not None:
        _JOURNAL.close()
    _JOURNAL_PATH = path
    _JOURNAL_RESUME = resume
    _JOURNAL = None


def configured_journal():
    """The process-wide :class:`~repro.resilience.journal.RunJournal`
    (built lazily from the configured path), or ``None``."""
    global _JOURNAL
    if _JOURNAL_PATH is None:
        return None
    if _JOURNAL is None:
        from ..resilience.journal import RunJournal

        _JOURNAL = RunJournal(_JOURNAL_PATH, resume=_JOURNAL_RESUME)
    return _JOURNAL


def set_default_progress(enabled: Optional[bool]) -> None:
    """Force the live progress line on/off (``None`` restores auto)."""
    global _DEFAULT_PROGRESS
    _DEFAULT_PROGRESS = enabled


def progress_enabled() -> bool:
    """Whether experiment sweeps render a live status line on stderr.

    The CLI's ``--progress``/``--no-progress`` flags decide; unset, the
    line is shown exactly when stderr is a terminal (never pollutes
    piped or CI output).
    """
    if _DEFAULT_PROGRESS is not None:
        return _DEFAULT_PROGRESS
    try:
        return sys.stderr.isatty()
    except (AttributeError, ValueError):
        return False


@dataclass
class ExperimentContext:
    """Corpus, runner and derived datasets shared by experiments."""

    corpus: Corpus
    runner: BenchmarkRunner

    @property
    def dev(self):
        return self.corpus.dev

    @property
    def train(self):
        return self.corpus.train

    def sweep(
        self,
        configs: Sequence[RunConfig],
        limit: Optional[int] = None,
        n_samples: Union[int, Sequence[int]] = 1,
        runner: Optional[BenchmarkRunner] = None,
    ) -> GridResult:
        """Evaluate a config grid on the session's default worker pool.

        ``runner`` overrides the context's runner for derived datasets
        (e.g. the Spider-Realistic variant) while keeping the same
        worker policy.  With progress enabled (see
        :func:`progress_enabled`) a live status line — throughput,
        utilization, stage quantiles, cache hit rate — renders on
        stderr while the sweep runs.
        """
        from ..resilience.interrupt import default_controller

        workers = default_workers()
        journal = configured_journal()
        interrupt = default_controller()
        if progress_enabled():
            from ..obs.metrics import MetricsRegistry
            from ..obs.progress import ProgressReporter

            registry = MetricsRegistry()
            with ProgressReporter(registry=registry,
                                  workers=workers) as reporter:
                grid_runner = GridRunner(
                    runner or self.runner, workers=workers,
                    progress=reporter, registry=registry,
                    journal=journal, interrupt=interrupt,
                )
                result = grid_runner.sweep(
                    configs, limit=limit, n_samples=n_samples
                )
        else:
            grid_runner = GridRunner(
                runner or self.runner, workers=workers,
                journal=journal, interrupt=interrupt,
            )
            result = grid_runner.sweep(
                configs, limit=limit, n_samples=n_samples
            )
        if any(report.partial for report in result):
            print(
                "note: sweep stopped early — reports are partial "
                "(resume with --journal PATH --resume)",
                file=sys.stderr,
            )
        return result

    def derived_runner(
        self,
        dataset: Optional[SpiderDataset] = None,
        candidates: Optional[SpiderDataset] = None,
        seed: int = BENCHMARK_SEED,
        pool=None,
    ) -> BenchmarkRunner:
        """A runner over a derived dataset (e.g. Spider-Realistic) that
        shares this context's database pool **and artifact cache** — so
        gold rows, generations and selection artifacts whose content
        keys coincide with the main runner's are computed once per
        session, not once per variant runner.

        ``pool`` swaps the database pool (e.g. another execution
        backend from :meth:`~repro.dataset.generator.corpus.Corpus.pool`)
        while still sharing the cache; backend-dependent artifacts stay
        disjoint because pool fingerprints carry the backend token.
        """
        return BenchmarkRunner(
            dataset if dataset is not None else self.dev,
            candidates if candidates is not None else self.train,
            pool if pool is not None else self.corpus.pool(),
            seed=seed,
            cache=self.runner.cache,
            repair=self.runner.repair,
            feedback_rounds=self.runner.feedback_rounds,
        )


_CACHE: Dict[bool, ExperimentContext] = {}


def get_context(fast: bool = False) -> ExperimentContext:
    """The shared experiment context (cached per size)."""
    context = _CACHE.get(fast)
    if context is None:
        corpus = build_corpus(FAST_CONFIG if fast else FULL_CONFIG)
        pool = corpus.pool(backend=_DEFAULT_BACKEND)
        runner = BenchmarkRunner(corpus.dev, corpus.train, pool,
                                 seed=BENCHMARK_SEED, chaos=_DEFAULT_CHAOS,
                                 repair=_DEFAULT_REPAIR,
                                 feedback_rounds=_DEFAULT_FEEDBACK_ROUNDS)
        context = ExperimentContext(corpus=corpus, runner=runner)
        _CACHE[fast] = context
    return context


def clear_cache() -> None:
    """Drop cached contexts (frees the SQLite pools)."""
    for context in _CACHE.values():
        context.corpus.close()
    _CACHE.clear()
