"""Shared experiment context: corpus + runner, built once and cached.

Every experiment driver and benchmark evaluates against the same generated
benchmark (seed-pinned), so numbers are comparable across tables and runs.
``fast=True`` shrinks the corpus for smoke tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..dataset.generator.corpus import Corpus, CorpusConfig, build_corpus
from ..eval.harness import BenchmarkRunner

#: Seed of the canonical benchmark corpus.
BENCHMARK_SEED = 7

#: Canonical corpus size (144 dev questions over 6 unseen databases,
#: 600 cross-domain candidates over 20 databases).
FULL_CONFIG = CorpusConfig(seed=BENCHMARK_SEED, train_per_db=30, dev_per_db=24)

#: Reduced corpus for smoke tests.
FAST_CONFIG = CorpusConfig(seed=BENCHMARK_SEED, train_per_db=10, dev_per_db=6)


@dataclass
class ExperimentContext:
    """Corpus, runner and derived datasets shared by experiments."""

    corpus: Corpus
    runner: BenchmarkRunner

    @property
    def dev(self):
        return self.corpus.dev

    @property
    def train(self):
        return self.corpus.train


_CACHE: Dict[bool, ExperimentContext] = {}


def get_context(fast: bool = False) -> ExperimentContext:
    """The shared experiment context (cached per size)."""
    context = _CACHE.get(fast)
    if context is None:
        corpus = build_corpus(FAST_CONFIG if fast else FULL_CONFIG)
        runner = BenchmarkRunner(corpus.dev, corpus.train, corpus.pool(),
                                 seed=BENCHMARK_SEED)
        context = ExperimentContext(corpus=corpus, runner=runner)
        _CACHE[fast] = context
    return context


def clear_cache() -> None:
    """Drop cached contexts (frees the SQLite pools)."""
    for context in _CACHE.values():
        context.corpus.close()
    _CACHE.clear()
