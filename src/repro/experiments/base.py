"""Experiment result container shared by all drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..eval.reporting import format_table


@dataclass
class ExperimentResult:
    """Output of one experiment driver (one paper table or figure).

    Attributes:
        artifact_id: paper artifact id, e.g. ``"table1"`` / ``"figure4"``.
        title: human-readable description.
        rows: tabular data (list of dicts) — the reproduced artifact.
        notes: qualitative expectations from the paper, for the report.
    """

    artifact_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""
    #: Optional ASCII chart (figure artifacts set this).
    chart: str = ""

    def render(self, columns: Optional[Sequence[str]] = None) -> str:
        text = format_table(self.rows, columns=columns, title=self.title)
        if self.chart:
            text += f"\n\n{self.chart}"
        if self.notes:
            text += f"\n\nPaper shape: {self.notes}"
        return text
