"""Experiment drivers — one per table/figure of the paper's evaluation."""

from .base import ExperimentResult
from .context import ExperimentContext, clear_cache, get_context
from .registry import EXPERIMENTS, run_all, run_experiment

__all__ = [
    "ExperimentResult", "ExperimentContext", "clear_cache", "get_context",
    "EXPERIMENTS", "run_all", "run_experiment",
]
