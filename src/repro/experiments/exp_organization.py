"""Table 4 — example organization strategies (few-shot EX and tokens).

Full-Information / SQL-Only / DAIL organization at k ∈ {1, 3, 5} with DAIL
selection, on GPT-4 and GPT-3.5-TURBO.

Paper shape: FI_O is strongest per example but costs the most tokens;
SQL_O is cheapest and weakest for strong models; DAIL_O (question–SQL
pairs) matches FI_O accuracy at a fraction of the tokens — the DAIL-SQL
choice.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..prompt.organization import ORGANIZATION_IDS
from .base import ExperimentResult
from .context import get_context

MODELS = ("gpt-4", "gpt-3.5-turbo")
SHOT_COUNTS = (1, 3, 5)


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    grid = context.sweep(
        [
            RunConfig(
                model=model, representation="CR_P", organization=org_id,
                selection="DAIL_S", k=k, label=f"{org_id}/{model}@{k}",
            )
            for org_id in ORGANIZATION_IDS
            for model in MODELS
            for k in SHOT_COUNTS
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for org_id in ORGANIZATION_IDS:
        row = {"organization": org_id}
        for model in MODELS:
            for k in SHOT_COUNTS:
                report = grid[f"{org_id}/{model}@{k}"]
                row[f"{model} k={k}"] = percent(report.execution_accuracy)
                if model == MODELS[0] and k == SHOT_COUNTS[-1]:
                    row["tokens@k=5"] = round(report.avg_prompt_tokens)
        rows.append(row)
    return ExperimentResult(
        artifact_id="table4",
        title="Table 4: example organization strategies, few-shot EX (%)",
        rows=rows,
        notes=(
            "DAIL_O ≈ FI_O accuracy at far fewer tokens; SQL_O cheapest "
            "but weakest for strong models."
        ),
    )


if __name__ == "__main__":
    print(run().render())
