"""Table 2 — prompt ablations: foreign keys and the no-explanation rule.

For each representation, toggles foreign-key information and the
"rule implication" (the OD_P-style *with no explanation* instruction) on
GPT-4 and GPT-3.5-TURBO, zero-shot.

Paper shape: foreign keys help (most on join-heavy queries, most for
CR_P); the rule helps chat models, which otherwise wrap answers in prose.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..prompt.representation import REPRESENTATION_IDS
from .base import ExperimentResult
from .context import get_context

MODELS = ("gpt-4", "gpt-3.5-turbo")


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    configs = []
    for rep_id in REPRESENTATION_IDS:
        for model in MODELS:
            configs.extend([
                RunConfig(model=model, representation=rep_id,
                          foreign_keys=False,
                          label=f"{rep_id}/{model}/base"),
                RunConfig(model=model, representation=rep_id,
                          foreign_keys=True,
                          label=f"{rep_id}/{model}/fk"),
                RunConfig(model=model, representation=rep_id,
                          foreign_keys=False, rule_implication=True,
                          label=f"{rep_id}/{model}/rule"),
            ])
    grid = context.sweep(configs, limit=limit)
    rows: List[dict] = []
    for rep_id in REPRESENTATION_IDS:
        for model in MODELS:
            base = grid[f"{rep_id}/{model}/base"]
            with_fk = grid[f"{rep_id}/{model}/fk"]
            with_rule = grid[f"{rep_id}/{model}/rule"]
            rows.append({
                "representation": rep_id,
                "model": model,
                "EX (base)": percent(base.execution_accuracy),
                "EX (+FK)": percent(with_fk.execution_accuracy),
                "EX (+RI)": percent(with_rule.execution_accuracy),
                "ΔFK": f"{100 * (with_fk.execution_accuracy - base.execution_accuracy):+.1f}",
                "ΔRI": f"{100 * (with_rule.execution_accuracy - base.execution_accuracy):+.1f}",
            })
    return ExperimentResult(
        artifact_id="table2",
        title="Table 2: foreign-key and rule-implication ablations (zero-shot EX, %)",
        rows=rows,
        notes=(
            "Foreign keys help, most where joins dominate; the no-"
            "explanation rule helps chatty chat models most."
        ),
    )


if __name__ == "__main__":
    print(run().render())
