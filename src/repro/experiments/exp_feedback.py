"""Execution-feedback repair loop: EX per round budget (supplementary).

Sweeps the same zero-shot systems at feedback round budgets N = 0, 1, 2
and reports execution accuracy per cell, plus how many dead candidates
the loop recovered (and how many budgets it exhausted) at the largest
budget.  The N = 0 column is the plain pipeline; uplift can only come
from candidates that failed lint or execution, because the loop never
replaces an executing candidate.

Expected shape: EX is monotonically non-decreasing in N (the loop keeps
the best candidate seen, so a round can never lose accuracy); weaker
models (llama-13b) both fail more often and recover a smaller share of
their failures than gpt-4, so their absolute uplift stays modest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..eval.harness import BenchmarkRunner, RunConfig
from ..eval.reporting import percent
from ..repair import REPAIR_EXHAUSTED
from .base import ExperimentResult
from .context import BENCHMARK_SEED, get_context

#: Round budgets the sweep compares (0 = loop disabled).
ROUND_BUDGETS = (0, 1, 2)

SYSTEMS = (
    ("gpt-4 (zero-shot)", RunConfig(model="gpt-4", representation="CR_P")),
    (
        "llama-13b (zero-shot)",
        RunConfig(model="llama-13b", representation="CR_P"),
    ),
)


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    configs = [config for _, config in SYSTEMS]
    grids: Dict[int, object] = {}
    for rounds in ROUND_BUDGETS:
        if rounds == context.runner.feedback_rounds:
            runner = context.runner
        else:
            # Same cache, same corpus, different round budget: base
            # generations and gold rows are shared across columns, only
            # the feedback turns are new artifacts.
            runner = BenchmarkRunner(
                context.dev, context.train, context.corpus.pool(),
                seed=BENCHMARK_SEED, cache=context.runner.cache,
                repair=context.runner.repair, feedback_rounds=rounds,
            )
        grids[rounds] = context.sweep(configs, limit=limit, runner=runner)
    rows: List[dict] = []
    for index, (label, _) in enumerate(SYSTEMS):
        row: dict = {"system": label}
        for rounds in ROUND_BUDGETS:
            report = grids[rounds][index]
            row[f"N={rounds} EX"] = percent(report.execution_accuracy)
        final = grids[ROUND_BUDGETS[-1]][index]
        row["recovered"] = sum(
            1 for r in final.records if r.repair_won_round > 0
        )
        row["exhausted"] = sum(
            1 for r in final.records if r.error_class == REPAIR_EXHAUSTED
        )
        rows.append(row)
    return ExperimentResult(
        artifact_id="feedback",
        title=(
            "Execution-feedback repair: EX (%) by round budget, recovery "
            f"counts at N={ROUND_BUDGETS[-1]}"
        ),
        rows=rows,
        notes=(
            "EX is non-decreasing in N (the loop only ever replaces a "
            "failing candidate with a strictly better one); recovery is "
            "model-dependent — stronger models convert more feedback "
            "turns into executing SQL."
        ),
    )


if __name__ == "__main__":
    print(run().render())
