"""Table 3 — example selection strategies (few-shot EX).

Random / question-similarity / masked-question-similarity / DAIL selection
at k ∈ {1, 3, 5}, Full-Information organization, on GPT-4 and
GPT-3.5-TURBO.

Paper shape: similarity-based selection beats random; masking domain words
helps; DAIL selection (adding skeleton similarity to a preliminary
prediction) is best — evidence that LLMs learn the question→SQL-skeleton
mapping.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..selection.strategies import SELECTION_IDS
from .base import ExperimentResult
from .context import get_context

MODELS = ("gpt-4", "gpt-3.5-turbo")
SHOT_COUNTS = (1, 3, 5)


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    grid = context.sweep(
        [
            RunConfig(
                model=model, representation="CR_P", organization="FI_O",
                selection=sel_id, k=k, label=f"{sel_id}/{model}@{k}",
            )
            for sel_id in SELECTION_IDS
            for model in MODELS
            for k in SHOT_COUNTS
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for sel_id in SELECTION_IDS:
        row = {"selection": sel_id}
        for model in MODELS:
            for k in SHOT_COUNTS:
                report = grid[f"{sel_id}/{model}@{k}"]
                row[f"{model} k={k}"] = percent(report.execution_accuracy)
        rows.append(row)
    return ExperimentResult(
        artifact_id="table3",
        title="Table 3: example selection strategies, few-shot EX (%)",
        rows=rows,
        notes=(
            "Similarity beats random; masked similarity beats raw; DAIL "
            "selection (question + skeleton similarity) is best."
        ),
    )


if __name__ == "__main__":
    print(run().render())
