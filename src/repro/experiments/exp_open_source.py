"""Table 6 — open-source LLMs, in-context learning.

LLaMA 7B/13B/33B, Falcon-40B and Vicuna 7B/13B/33B at k ∈ {0, 1, 3, 5}
with the DAIL-SQL prompt (CR_P + DAIL_S + DAIL_O).

Paper shape: accuracy grows with model scale; alignment matters — Vicuna
(instruction-tuned LLaMA) beats LLaMA at every scale; Falcon-40B
underperforms its size; all remain far below OpenAI models.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..llm.profiles import OPEN_SOURCE_MODELS
from .base import ExperimentResult
from .context import get_context

SHOT_COUNTS = (0, 1, 3, 5)


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    grid = context.sweep(
        [
            RunConfig(
                model=model, representation="CR_P", organization="DAIL_O",
                selection="DAIL_S" if k > 0 else None, k=k,
                label=f"{model}@{k}",
            )
            for model in OPEN_SOURCE_MODELS
            for k in SHOT_COUNTS
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for model in OPEN_SOURCE_MODELS:
        row = {"model": model}
        for k in SHOT_COUNTS:
            row[f"EX k={k}"] = percent(grid[f"{model}@{k}"].execution_accuracy)
        rows.append(row)
    return ExperimentResult(
        artifact_id="table6",
        title="Table 6: open-source LLMs, in-context learning EX (%)",
        rows=rows,
        notes=(
            "Scale helps (LLaMA 7B<13B<33B); alignment helps (Vicuna > "
            "LLaMA per scale); Falcon-40B underperforms its size."
        ),
    )


if __name__ == "__main__":
    print(run().render())
