"""Table 5 — the Spider leaderboard comparison.

Evaluates DAIL-SQL (with and without self-consistency) against the
baselines of the paper's leaderboard table — DIN-SQL, C3, few-shot and
zero-shot GPT references — on the held-out split.

Paper shape: DAIL-SQL (GPT-4) tops the table (86.6% EX on Spider test vs
85.3% for DIN-SQL); self-consistency adds a small increment; C3 trails
DIN-SQL; zero-shot baselines trail everything.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.baselines import leaderboard_entries
from ..core.rule_parser import RuleBasedParser
from ..db.execution import results_match
from ..eval.exact_match import exact_match
from ..eval.reporting import percent
from .base import ExperimentResult
from .context import get_context


def _rule_based_row(context, limit: Optional[int]) -> dict:
    """Score the non-LLM rule-based parser with the same EX/EM harness."""
    pool = context.corpus.pool()
    parsers = {
        db_id: RuleBasedParser(context.dev.schema(db_id))
        for db_id in context.dev.schemas
    }
    examples = context.dev.examples[:limit] if limit else context.dev.examples
    ex = em = 0
    for example in examples:
        result = parsers[example.db_id].parse(example.question)
        if result.query is None:
            continue
        database = pool.get(example.db_id)
        rows = database.try_execute(result.sql)
        gold_rows = database.execute(example.query)
        if rows is not None and results_match(gold_rows, rows, example.query):
            ex += 1
        if exact_match(example.query, result.sql):
            em += 1
    return {
        "system": "Rule-based parser (no LLM)",
        "EX": percent(ex / len(examples)),
        "EM": percent(em / len(examples)),
        "avg prompt tokens": 0,
        "samples": 0,
    }


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    entries = leaderboard_entries()
    grid = context.sweep(
        [entry.config for entry in entries],
        limit=limit,
        n_samples=[entry.n_samples for entry in entries],
    )
    rows: List[dict] = []
    for entry, report in zip(entries, grid):
        rows.append({
            "system": entry.name,
            "EX": percent(report.execution_accuracy),
            "EM": percent(report.exact_match_accuracy),
            "avg prompt tokens": round(report.avg_prompt_tokens),
            "samples": entry.n_samples,
        })
    rows.append(_rule_based_row(context, limit))
    rows.sort(key=lambda r: -float(r["EX"]))
    return ExperimentResult(
        artifact_id="table5",
        title="Table 5: leaderboard comparison on the held-out split (EX %)",
        rows=rows,
        notes=(
            "DAIL-SQL (GPT-4) first, +SC slightly ahead; DIN-SQL-style "
            "few-shot next; C3-style zero-shot behind; plain zero-shot last."
        ),
    )


if __name__ == "__main__":
    print(run().render())
