"""Figures 4 & 5 — token efficiency.

Figure 4: zero-shot — execution accuracy against average prompt tokens for
each question representation (GPT-4 and GPT-3.5-TURBO).

Figure 5: few-shot — EX vs tokens for every (selection × organization)
pair at k = 5 (GPT-4), the cost-effectiveness frontier the paper uses to
justify DAIL-SQL.

Paper shape (F4): BS_P/TR_P are short, CR_P longest; OD_P sits at a good
accuracy-per-token point.  (F5): DAIL_S+DAIL_O dominates — FI_O pays ~3×
the tokens for no accuracy gain; SQL_O is cheap but loses accuracy.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.figures import ascii_scatter
from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..prompt.organization import ORGANIZATION_IDS
from ..prompt.representation import REPRESENTATION_IDS
from ..selection.strategies import SELECTION_IDS
from .base import ExperimentResult
from .context import get_context

F4_MODELS = ("gpt-4", "gpt-3.5-turbo")


def run_figure4(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    cells = [(model, rep_id) for model in F4_MODELS
             for rep_id in REPRESENTATION_IDS]
    grid = context.sweep(
        [
            RunConfig(model=model, representation=rep_id,
                      label=f"{model}/{rep_id}")
            for model, rep_id in cells
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for model, rep_id in cells:
        report = grid[f"{model}/{rep_id}"]
        rows.append({
            "model": model,
            "representation": rep_id,
            "avg prompt tokens": round(report.avg_prompt_tokens, 1),
            "EX": percent(report.execution_accuracy),
            "EX per 1k tokens": round(report.token_efficiency(), 2),
        })
    chart = ascii_scatter(
        [{"tokens": r["avg prompt tokens"], "EX": r["EX"],
          "model": r["model"]} for r in rows],
        x="tokens", y="EX", label="model",
        title="EX vs prompt tokens (each point is one representation)",
    )
    return ExperimentResult(
        artifact_id="figure4",
        title="Figure 4: zero-shot token efficiency (EX vs prompt tokens)",
        rows=rows,
        chart=chart,
        notes=(
            "BS_P/TR_P shortest, CR_P longest; OD_P balances accuracy "
            "and cost."
        ),
    )


def run_figure5(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    cells = [(sel_id, org_id) for sel_id in SELECTION_IDS
             for org_id in ORGANIZATION_IDS]
    grid = context.sweep(
        [
            RunConfig(
                model="gpt-4", representation="CR_P",
                organization=org_id, selection=sel_id, k=5,
                label=f"{sel_id}/{org_id}",
            )
            for sel_id, org_id in cells
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for sel_id, org_id in cells:
        report = grid[f"{sel_id}/{org_id}"]
        rows.append({
            "selection": sel_id,
            "organization": org_id,
            "avg prompt tokens": round(report.avg_prompt_tokens, 1),
            "EX": percent(report.execution_accuracy),
            "EX per 1k tokens": round(report.token_efficiency(), 2),
        })
    chart = ascii_scatter(
        [{"tokens": r["avg prompt tokens"], "EX": r["EX"],
          "organization": r["organization"]} for r in rows],
        x="tokens", y="EX", label="organization",
        title="EX vs prompt tokens (points: selection strategies per organization)",
    )
    return ExperimentResult(
        artifact_id="figure5",
        title="Figure 5: few-shot token efficiency, k=5, GPT-4",
        rows=rows,
        chart=chart,
        notes=(
            "DAIL_S+DAIL_O dominates the accuracy-per-token frontier; "
            "FI_O pays ~3x tokens for no gain; SQL_O cheap but weaker."
        ),
    )


def run(fast: bool = False, limit: Optional[int] = None):
    return [run_figure4(fast=fast, limit=limit), run_figure5(fast=fast, limit=limit)]


if __name__ == "__main__":
    for result in run():
        print(result.render())
        print()
