"""Table 1 — zero-shot question representations × LLMs (EM and EX).

Reproduces the paper's first benchmark axis: each of the five question
representations, zero-shot, across GPT-4, GPT-3.5-TURBO, TEXT-DAVINCI-003
and Vicuna-33B on the dev split.

Paper shape: OD_P and CR_P lead; the best representation depends on the
model (GPT-3.5-TURBO collapses on BS_P, TEXT-DAVINCI-003 favours CR_P);
EM runs below EX everywhere.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..prompt.representation import REPRESENTATION_IDS
from .base import ExperimentResult
from .context import get_context

#: Models of the paper's zero-shot comparison.
MODELS = ("gpt-4", "gpt-3.5-turbo", "text-davinci-003", "vicuna-33b")


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    """Run the Table 1 grid and return the reproduced table."""
    context = get_context(fast)
    grid = context.sweep(
        [
            RunConfig(model=model, representation=rep_id,
                      label=f"{rep_id}/{model}")
            for rep_id in REPRESENTATION_IDS
            for model in MODELS
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for rep_id in REPRESENTATION_IDS:
        row = {"representation": rep_id}
        for model in MODELS:
            report = grid[f"{rep_id}/{model}"]
            row[f"{model} EX"] = percent(report.execution_accuracy)
            row[f"{model} EM"] = percent(report.exact_match_accuracy)
        rows.append(row)
    return ExperimentResult(
        artifact_id="table1",
        title="Table 1: zero-shot EX/EM by representation and model (%)",
        rows=rows,
        notes=(
            "OD_P/CR_P lead; best representation is model-dependent; "
            "GPT-3.5-TURBO drops sharply on BS_P; EM < EX."
        ),
    )


if __name__ == "__main__":
    print(run().render())
