"""Table 9 — Spider-Realistic robustness.

Evaluates the same models zero-shot (CR_P) on the dev split and on its
Spider-Realistic variant (explicit column mentions paraphrased away), plus
DAIL-SQL on both.

Paper shape: every model drops on Spider-Realistic (schema linking gets
harder); weaker / less aligned models drop more; DAIL-SQL remains ahead.
"""

from __future__ import annotations

from typing import List, Optional

from ..dataset.generator.corpus import spider_realistic
from ..eval.harness import RunConfig
from ..eval.reporting import percent
from .base import ExperimentResult
from .context import get_context

MODELS = ("gpt-4", "gpt-3.5-turbo", "vicuna-33b")


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    realistic = spider_realistic(context.dev)
    # Shares the context's pool and artifact cache: the candidate-pool
    # embeddings and any overlapping gold/generation artifacts carry over.
    realistic_runner = context.derived_runner(dataset=realistic)
    rows: List[dict] = []
    configs = [
        ("zero-shot", RunConfig(model=m, representation="CR_P"))
        for m in MODELS
    ]
    configs.append((
        "DAIL-SQL",
        RunConfig(model="gpt-4", representation="CR_P", organization="DAIL_O",
                  selection="DAIL_S", k=5, foreign_keys=True),
    ))
    dev_grid = context.sweep([c for _, c in configs], limit=limit)
    realistic_grid = context.sweep(
        [c for _, c in configs], limit=limit, runner=realistic_runner
    )
    for (label, config), dev_report, realistic_report in zip(
        configs, dev_grid, realistic_grid
    ):
        rows.append({
            "system": f"{config.model} ({label})",
            "Spider dev EX": percent(dev_report.execution_accuracy),
            "Spider-Realistic EX": percent(realistic_report.execution_accuracy),
            "Δ": f"{100 * (realistic_report.execution_accuracy - dev_report.execution_accuracy):+.1f}",
        })
    return ExperimentResult(
        artifact_id="table9",
        title="Table 9: robustness on Spider-Realistic (EX %)",
        rows=rows,
        notes=(
            "All models drop when explicit column mentions disappear; "
            "weaker models drop more; DAIL-SQL stays ahead."
        ),
    )


if __name__ == "__main__":
    print(run().render())
