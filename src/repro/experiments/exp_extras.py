"""Supplementary analyses beyond the paper's numbered artifacts.

* ``hardness`` — per-hardness EX breakdown of the main systems (the paper
  reports hardness splits for its headline results).
* ``cost`` — monetary cost per question and accuracy-per-dollar, the
  economics framing of the paper's efficiency sections.
* ``sc_sweep`` — self-consistency sample-count ablation.
* ``dail_threshold`` — ablation of DAIL_S's skeleton-similarity gate.
* ``self_correction`` — execution-feedback retry on top of zero-shot.
* ``errors`` — AST-diff failure-mode breakdown per system.
* ``lint`` — static-analyzer summary: per-rule firing counts, gated
  executions, and each rule's precision as a wrongness signal.
* ``metric_audit`` — EM × EX × semantic-equivalence cross-tab per
  hardness bucket: where the three metrics disagree and why.
* ``calibration`` — reliability diagram of the simulated outcome model.
* ``pound_sign`` — the introduction's anecdote: OD_P without "#" markers.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.self_correction import SelfCorrector
from ..eval.cost import accuracy_per_dollar, cost_per_question_usd
from ..eval.harness import RunConfig
from ..eval.reporting import percent
from ..llm.simulated import make_llm
from ..prompt.builder import PromptBuilder
from ..prompt.organization import get_organization
from ..prompt.representation import RepresentationOptions, get_representation
from .base import ExperimentResult
from .context import get_context

_DAIL_CONFIG = dict(
    model="gpt-4", representation="CR_P", organization="DAIL_O",
    selection="DAIL_S", k=5, foreign_keys=True,
)


def run_hardness(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    """Per-hardness EX for DAIL-SQL, few-shot random, and zero-shot."""
    context = get_context(fast)
    systems = [
        ("DAIL-SQL (GPT-4)", RunConfig(**_DAIL_CONFIG)),
        ("Random 5-shot (GPT-4)", RunConfig(
            model="gpt-4", representation="CR_P", organization="FI_O",
            selection="RD_S", k=5)),
        ("Zero-shot (GPT-4)", RunConfig(model="gpt-4", representation="CR_P")),
        ("Zero-shot (Vicuna-33B)", RunConfig(
            model="vicuna-33b", representation="CR_P")),
    ]
    grid = context.sweep([config for _, config in systems], limit=limit)
    rows: List[dict] = []
    for (name, _config), report in zip(systems, grid):
        breakdown = report.by_hardness()
        rows.append({
            "system": name,
            **{level: percent(value) for level, value in breakdown.items()},
            "all": percent(report.execution_accuracy),
        })
    return ExperimentResult(
        artifact_id="hardness",
        title="Supplementary: EX by Spider hardness level (%)",
        rows=rows,
        notes=(
            "Accuracy falls monotonically easy→extra for every system; "
            "good examples help most on hard/extra queries."
        ),
    )


def run_cost(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    """Dollar cost per question for the leaderboard systems."""
    from ..core.baselines import leaderboard_entries

    context = get_context(fast)
    entries = leaderboard_entries()
    grid = context.sweep(
        [entry.config for entry in entries],
        limit=limit,
        n_samples=[entry.n_samples for entry in entries],
    )
    rows: List[dict] = []
    for entry, report in zip(entries, grid):
        rows.append({
            "system": entry.name,
            "EX": percent(report.execution_accuracy),
            "USD/question": round(
                cost_per_question_usd(report, entry.config.model,
                                      entry.n_samples), 5),
            "EX-points per $": round(
                accuracy_per_dollar(report, entry.config.model,
                                    entry.n_samples), 1),
        })
    return ExperimentResult(
        artifact_id="cost",
        title="Supplementary: monetary cost of the leaderboard systems",
        rows=rows,
        notes=(
            "DAIL_O's token savings translate directly into dollars; "
            "GPT-3.5 systems are far cheaper per question but buy less "
            "accuracy."
        ),
    )


def run_sc_sweep(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    """Self-consistency sample-count ablation for DAIL-SQL."""
    context = get_context(fast)
    counts = (1, 3, 5, 7)
    grid = context.sweep(
        [RunConfig(**_DAIL_CONFIG, label=f"sc@{n}") for n in counts],
        limit=limit,
        n_samples=list(counts),
    )
    rows: List[dict] = []
    for n_samples, report in zip(counts, grid):
        rows.append({
            "samples": n_samples,
            "EX": percent(report.execution_accuracy),
        })
    return ExperimentResult(
        artifact_id="sc_sweep",
        title="Supplementary: self-consistency sample count (DAIL-SQL, GPT-4)",
        rows=rows,
        notes="Small monotone gain that saturates quickly, as in the paper.",
    )


def run_dail_threshold(fast: bool = False,
                       limit: Optional[int] = None) -> ExperimentResult:
    """Ablate the skeleton-similarity gate of DAIL selection.

    Threshold 0 disables the structural gate (pure masked-question
    similarity, i.e. MQS_S); very high thresholds gate almost nothing in.
    """
    from ..selection.strategies import DailSelection

    context = get_context(fast)
    rows: List[dict] = []
    for threshold in (0.0, 0.2, 0.35, 0.6, 0.9):
        # Thresholds change only the selection artifacts (the strategy
        # fingerprint includes the threshold); sharing the context cache
        # lets preliminary SQL and gold rows amortise across the ablation.
        runner = context.derived_runner()
        strategy = DailSelection(context.train, skeleton_threshold=threshold)
        strategy.set_target_dataset(context.dev)
        runner._selections["DAIL_S"] = strategy
        report = context.sweep(
            [RunConfig(**_DAIL_CONFIG)], limit=limit, runner=runner
        )[0]
        rows.append({
            "skeleton threshold": threshold,
            "EX": percent(report.execution_accuracy),
        })
    return ExperimentResult(
        artifact_id="dail_threshold",
        title="Supplementary: DAIL_S skeleton-similarity threshold ablation",
        rows=rows,
        notes=(
            "A moderate gate beats none (structure matters) and beats an "
            "extreme one (question similarity still matters)."
        ),
    )


def run_error_analysis(fast: bool = False,
                       limit: Optional[int] = None) -> ExperimentResult:
    """Failure-mode breakdown for representative systems (paper-style)."""
    from ..eval.error_analysis import breakdown_rows, error_breakdown

    context = get_context(fast)
    systems = [
        ("DAIL-SQL (GPT-4)", RunConfig(**_DAIL_CONFIG)),
        ("Zero-shot (GPT-4)", RunConfig(model="gpt-4", representation="CR_P")),
        ("Zero-shot (Vicuna-33B)", RunConfig(
            model="vicuna-33b", representation="CR_P")),
        ("Zero-shot (LLaMA-13B)", RunConfig(
            model="llama-13b", representation="CR_P")),
    ]
    grid = context.sweep([config for _, config in systems], limit=limit)
    breakdowns = {}
    for (name, _config), report in zip(systems, grid):
        breakdowns[name] = error_breakdown(report.records)
    return ExperimentResult(
        artifact_id="errors",
        title="Supplementary: failure-mode breakdown (primary category counts)",
        rows=breakdown_rows(breakdowns),
        notes=(
            "Weak models fail structurally (wrong table/column, "
            "unparseable); strong models' residual errors concentrate in "
            "conditions and values."
        ),
    )


def run_lint_summary(fast: bool = False,
                     limit: Optional[int] = None) -> ExperimentResult:
    """Static-analyzer summary over representative systems.

    For each system, every fired lint rule is cross-tabulated against
    the prediction's outcome (see
    :func:`~repro.eval.error_analysis.lint_rows`): how often it fired,
    how many executions its fatal diagnostics gated, and the rule's
    precision as a wrongness signal — flagged predictions that indeed
    missed execution accuracy.
    """
    from ..eval.error_analysis import lint_rows

    context = get_context(fast)
    systems = [
        ("DAIL-SQL (GPT-4)", RunConfig(**_DAIL_CONFIG)),
        ("Zero-shot (GPT-4)", RunConfig(model="gpt-4", representation="CR_P")),
        ("Zero-shot (Vicuna-33B)", RunConfig(
            model="vicuna-33b", representation="CR_P")),
        ("Zero-shot (LLaMA-13B)", RunConfig(
            model="llama-13b", representation="CR_P")),
    ]
    grid = context.sweep([config for _, config in systems], limit=limit)
    rows: List[dict] = []
    for (name, _config), report in zip(systems, grid):
        gated = sum(
            1 for r in report.records if r.error_class.startswith("lint:")
        )
        flagged = sum(1 for r in report.records if r.diagnostics)
        if not flagged:
            rows.append({"system": name, "rule": "(none fired)",
                         "fired": 0, "gated": 0, "precision": ""})
            continue
        for rule_row in lint_rows(report.records):
            rows.append({"system": name, **rule_row})
        rows.append({"system": name, "rule": "TOTAL",
                     "fired": flagged, "gated": gated, "precision": ""})
    return ExperimentResult(
        artifact_id="lint",
        title="Supplementary: static-analyzer diagnostics by system",
        rows=rows,
        notes=(
            "Weak models trip identifier-resolution rules (fatal, so the "
            "DB round-trip is skipped); warning rules fire rarely on "
            "strong models and mostly on genuinely wrong predictions."
        ),
    )


def run_metric_audit(fast: bool = False,
                     limit: Optional[int] = None) -> ExperimentResult:
    """EM × EX × semantic-equivalence audit of the evaluation metrics.

    For representative systems, cross-tabulates the three per-record
    verdicts per hardness bucket
    (:func:`~repro.eval.error_analysis.metric_cross_tab`).  The
    disagreement columns audit the metrics against each other:
    ``ex_not_sem`` bounds potential execution-accuracy false positives
    (right answer on this instance, no proof it generalises),
    ``sem_not_em`` counts exact-match false negatives (provably
    equivalent rewrites EM rejects), ``em_not_sem`` is mostly
    value-masked EM hiding wrong literals, and ``sem_not_ex`` must stay
    zero (prover soundness).
    """
    from ..eval.error_analysis import metric_cross_tab

    context = get_context(fast)
    systems = [
        ("DAIL-SQL (GPT-4)", RunConfig(**_DAIL_CONFIG)),
        ("Zero-shot (GPT-4)", RunConfig(model="gpt-4", representation="CR_P")),
        ("Zero-shot (Vicuna-33B)", RunConfig(
            model="vicuna-33b", representation="CR_P")),
    ]
    grid = context.sweep([config for _, config in systems], limit=limit)
    rows: List[dict] = []
    unsound = 0
    for (name, _config), report in zip(systems, grid):
        for tab_row in metric_cross_tab(report.records):
            unsound += int(tab_row["sem_not_ex"])  # type: ignore[call-overload]
            rows.append({"system": name, **tab_row})
    return ExperimentResult(
        artifact_id="metric_audit",
        title="Supplementary: EM × EX × semantic equivalence by hardness",
        rows=rows,
        notes=(
            f"sem ≤ ex holds in every bucket (sem_not_ex={unsound}); "
            "sem_not_em rows are EM false negatives the canonicalizer "
            "sees through, em_not_sem rows are value-masked EM hits "
            "the prover declines to certify."
        ),
    )


def run_pound_sign(fast: bool = False,
                   limit: Optional[int] = None) -> ExperimentResult:
    """The introduction's anecdote: remove OD_P's pound signs.

    OpenAI's SQL-translate demo separates prompt from response with "#";
    the paper notes that removing the sign significantly drops
    performance.  ODX_P is OD_P with identical content and no markers.
    """
    context = get_context(fast)
    models = ("gpt-4", "gpt-3.5-turbo", "vicuna-33b")
    grid = context.sweep(
        [
            RunConfig(model=model, representation=rep, label=f"{model}/{rep}")
            for model in models
            for rep in ("OD_P", "ODX_P")
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for model in models:
        with_pound = grid[f"{model}/OD_P"]
        without = grid[f"{model}/ODX_P"]
        rows.append({
            "model": model,
            "OD_P EX": percent(with_pound.execution_accuracy),
            "no-# EX": percent(without.execution_accuracy),
            "Δ": f"{100 * (without.execution_accuracy - with_pound.execution_accuracy):+.1f}",
        })
    return ExperimentResult(
        artifact_id="pound_sign",
        title="Supplementary: removing OD_P's pound signs (intro anecdote)",
        rows=rows,
        notes=(
            "Stripping the comment markers drops accuracy for every "
            "model, most for the chat model the demo targets."
        ),
    )


def run_token_budget(fast: bool = False,
                     limit: Optional[int] = None) -> ExperimentResult:
    """DAIL-SQL under a hard prompt-token budget.

    DAIL-SQL's pitch is packing useful examples into however much context
    you can afford: as ``max_tokens`` shrinks, the builder drops the
    least-similar examples first.  This sweep shows the accuracy/budget
    frontier and how many examples survive each budget.
    """
    context = get_context(fast)
    budgets = (300, 400, 500, 700, 1000, None)
    grid = context.sweep(
        [
            RunConfig(**{**_DAIL_CONFIG, "k": 8, "max_tokens": budget,
                         "label": f"budget@{budget}"})
            for budget in budgets
        ],
        limit=limit,
    )
    rows: List[dict] = []
    for budget, report in zip(budgets, grid):
        rows.append({
            "max_tokens": budget if budget is not None else "unlimited",
            "avg examples kept": round(report.avg_examples, 2),
            "avg prompt tokens": round(report.avg_prompt_tokens, 1),
            "EX": percent(report.execution_accuracy),
        })
    return ExperimentResult(
        artifact_id="token_budget",
        title="Supplementary: DAIL-SQL under a prompt-token budget (k=8 requested)",
        rows=rows,
        notes=(
            "Accuracy degrades gracefully as the budget shrinks — the "
            "most similar examples are kept, so the first tokens cut are "
            "the cheapest."
        ),
    )


def run_calibration(fast: bool = False,
                    limit: Optional[int] = None) -> ExperimentResult:
    """Reliability diagram of the simulated outcome model.

    Checks that the substrate's success probabilities track realised EX
    frequencies — the simulation's own health metric (docs/simulation.md).
    """
    from ..eval.calibration import model_calibration

    context = get_context(fast)
    rows: List[dict] = []
    summaries = []
    for model in ("gpt-4", "vicuna-33b"):
        llm = make_llm(model, context.runner.oracle)
        config = RunConfig(model=model, representation="CR_P")
        report = model_calibration(llm, context.dev, context.runner, config,
                                   limit=limit)
        for bucket_row in report.rows():
            rows.append({"model": model, **bucket_row})
        summaries.append(
            f"{model}: ECE={report.expected_calibration_error:.3f}, "
            f"Brier={report.brier_score:.3f}"
        )
    return ExperimentResult(
        artifact_id="calibration",
        title="Supplementary: outcome-model reliability diagram",
        rows=rows,
        notes="; ".join(summaries) + (
            " — observed EX per bucket tracks predicted p (item-response "
            "draws are uniform per question)."
        ),
    )


def run_self_correction(fast: bool = False,
                        limit: Optional[int] = None) -> ExperimentResult:
    """Execution-feedback retries on top of zero-shot prompting."""
    from ..db.execution import results_match

    context = get_context(fast)
    pool = context.corpus.pool()
    rows: List[dict] = []
    for model in ("gpt-4", "vicuna-33b"):
        llm = make_llm(model, context.runner.oracle)
        builder = PromptBuilder(
            get_representation("CR_P", RepresentationOptions(foreign_keys=True)),
            get_organization("FI_O"),
        )
        for max_attempts in (1, 2, 3):
            corrector = SelfCorrector(llm, max_attempts=max_attempts)
            correct = 0
            corrected = 0
            examples = context.dev.examples[:limit] if limit else context.dev.examples
            for example in examples:
                schema = context.dev.schema(example.db_id)
                database = pool.get(example.db_id)
                prompt = builder.build(schema, example.question)
                sql, trace = corrector.generate(prompt, database)
                corrected += trace.corrected
                pred_rows = database.try_execute(sql)
                gold_rows = database.execute(example.query)
                if pred_rows is not None and results_match(
                    gold_rows, pred_rows, example.query
                ):
                    correct += 1
            rows.append({
                "model": model,
                "max attempts": max_attempts,
                "EX": percent(correct / len(examples)),
                "queries repaired": corrected,
            })
    return ExperimentResult(
        artifact_id="self_correction",
        title="Supplementary: execution-feedback self-correction (zero-shot)",
        rows=rows,
        notes=(
            "Retries repair non-executable outputs; the accuracy gain "
            "concentrates in strong models (their rare failures are "
            "formatting), while weak models' repaired queries usually "
            "remain wrong."
        ),
    )
