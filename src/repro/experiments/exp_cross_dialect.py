"""Cross-dialect EX transfer matrix (supplementary artifact).

Predictions are generated once (generation artifacts exclude the pool
fingerprint, so they are shared across backends) and then *executed* on
every registered execution backend — the SQLite reference plus the
dialect-profile emulated backends, and DuckDB when the driver is
installed.  Each cell is the execution accuracy of the same predicted
SQL under a different dialect's semantics, in the spirit of ExeSQL-style
cross-dialect transfer studies.

Expected shape: the reference dialect scores highest (predictions are
written in Spider's SQLite dialect); the Postgres-profile column drops
wherever predictions use double-quoted string literals (strings on
SQLite, identifiers on Postgres); MySQL tracks SQLite closely since the
emulation preserves Spider's quoting conventions.
"""

from __future__ import annotations

from typing import List, Optional

from ..db.backends import get_backend
from ..eval.harness import RunConfig
from ..eval.reporting import percent
from .base import ExperimentResult
from .context import get_context

#: Emulated profiles always run; DuckDB joins when importable.
BASE_BACKENDS = ("sqlite", "postgres", "mysql")

SYSTEMS = (
    ("gpt-4 (zero-shot)", RunConfig(model="gpt-4", representation="CR_P")),
    (
        "DAIL-SQL",
        RunConfig(model="gpt-4", representation="CR_P", organization="DAIL_O",
                  selection="DAIL_S", k=5, foreign_keys=True),
    ),
)


def backend_columns() -> List[str]:
    """The backends the matrix covers in this environment (>= 3)."""
    names = list(BASE_BACKENDS)
    if get_backend("duckdb").available():
        names.append("duckdb")
    return names


def run(fast: bool = False, limit: Optional[int] = None) -> ExperimentResult:
    context = get_context(fast)
    backends = backend_columns()
    configs = [config for _, config in SYSTEMS]
    grids = {}
    for name in backends:
        if name == getattr(context.runner.pool, "backend_name", "sqlite"):
            runner = context.runner
        else:
            # Same cache, backend-specific pool: generate artifacts are
            # shared, execute artifacts stay disjoint (the pool
            # fingerprint carries the backend token).
            runner = context.derived_runner(
                pool=context.corpus.pool(backend=name)
            )
        grids[name] = context.sweep(configs, limit=limit, runner=runner)
    rows: List[dict] = []
    for index, (label, _) in enumerate(SYSTEMS):
        row: dict = {"system": label}
        for name in backends:
            report = grids[name][index]
            row[f"{name} EX"] = percent(report.execution_accuracy)
        rows.append(row)
    return ExperimentResult(
        artifact_id="cross_dialect",
        title="Cross-dialect execution transfer (EX % per backend)",
        rows=rows,
        notes=(
            "Same predictions executed per backend; the reference "
            "dialect (sqlite) scores highest, the Postgres profile "
            "penalises double-quoted string literals."
        ),
    )


if __name__ == "__main__":
    print(run().render())
