"""Registry mapping paper artifacts to experiment drivers."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ExperimentError
from . import (
    exp_ablation,
    exp_cross_dialect,
    exp_extras,
    exp_feedback,
    exp_fewshot_curve,
    exp_leaderboard,
    exp_open_source,
    exp_organization,
    exp_realistic,
    exp_selection,
    exp_sft,
    exp_token_efficiency,
    exp_zero_shot,
)
from .base import ExperimentResult

#: artifact id → zero-argument-style driver (accepts fast/limit kwargs).
EXPERIMENTS: Dict[str, Callable] = {
    "table1": exp_zero_shot.run,
    "table2": exp_ablation.run,
    "table3": exp_selection.run,
    "table4": exp_organization.run,
    "table5": exp_leaderboard.run,
    "table6": exp_open_source.run,
    "table7": exp_sft.run_representation_table,
    "table8": exp_sft.run_icl_table,
    "table9": exp_realistic.run,
    "figure4": exp_token_efficiency.run_figure4,
    "figure5": exp_token_efficiency.run_figure5,
    "figure6": exp_fewshot_curve.run,
    # Supplementary analyses (not numbered artifacts of the paper).
    "hardness": exp_extras.run_hardness,
    "cost": exp_extras.run_cost,
    "sc_sweep": exp_extras.run_sc_sweep,
    "dail_threshold": exp_extras.run_dail_threshold,
    "self_correction": exp_extras.run_self_correction,
    "errors": exp_extras.run_error_analysis,
    "lint": exp_extras.run_lint_summary,
    "metric_audit": exp_extras.run_metric_audit,
    "calibration": exp_extras.run_calibration,
    "pound_sign": exp_extras.run_pound_sign,
    "token_budget": exp_extras.run_token_budget,
    "cross_dialect": exp_cross_dialect.run,
    "feedback": exp_feedback.run,
}

#: The paper's numbered artifacts (subset of EXPERIMENTS).
PAPER_ARTIFACTS = (
    "table1", "table2", "table3", "table4", "table5", "table6",
    "table7", "table8", "table9", "figure4", "figure5", "figure6",
)


def run_experiment(
    artifact_id: str, fast: bool = False, limit: Optional[int] = None
) -> ExperimentResult:
    """Run one experiment by artifact id.

    Raises:
        ExperimentError: for unknown ids.
    """
    try:
        driver = EXPERIMENTS[artifact_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {artifact_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from exc
    return driver(fast=fast, limit=limit)


def run_all(
    fast: bool = False,
    limit: Optional[int] = None,
    include_supplementary: bool = False,
) -> List[ExperimentResult]:
    """Run every paper artifact (and optionally the supplementary ones)."""
    artifacts = list(PAPER_ARTIFACTS)
    if include_supplementary:
        artifacts += sorted(set(EXPERIMENTS) - set(PAPER_ARTIFACTS))
    return [run_experiment(a, fast=fast, limit=limit) for a in artifacts]
