"""Token and simulated-dollar cost accounting.

The paper's headline analysis is *token efficiency* — execution accuracy
per prompt token (Figures 4–5) — priced with the public mid-2023 API
price sheet its experiments paid.  This module owns both halves:

* the :class:`PriceSheet` table (moved here from ``repro.eval.cost``,
  which re-exports it, so the serving layer can price calls without
  importing the evaluation stack);
* the :class:`CostMeter`, the single funnel through which every LLM
  call's prompt/completion token counts become metrics —
  ``repro_llm_tokens_total{kind,model,…}`` and
  ``repro_llm_cost_usd_total{model,…}`` — stamped with whatever
  attribution labels (cell, tenant, backend, stage) are bound in the
  calling thread's :mod:`~repro.obs.context`.

:meth:`~repro.eval.telemetry.TelemetryCollector.freeze` reads the same
counters back into :class:`~repro.eval.telemetry.RunTelemetry`, so the
per-report token/cost fields reconcile with a ``/metrics`` scrape by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import EvaluationError
from . import context
from .metrics import M_LLM_COST, M_LLM_TOKENS, MetricsRegistry


@dataclass(frozen=True)
class PriceSheet:
    """USD per 1k tokens, split prompt/completion (OpenAI convention)."""

    prompt_per_1k: float
    completion_per_1k: float


#: Mid-2023 public API prices (USD / 1k tokens); open-source entries
#: approximate amortised GPU cost for self-hosting.
PRICES: Dict[str, PriceSheet] = {
    "gpt-4": PriceSheet(0.03, 0.06),
    "gpt-3.5-turbo": PriceSheet(0.0015, 0.002),
    "text-davinci-003": PriceSheet(0.02, 0.02),
    "llama-7b": PriceSheet(0.0002, 0.0002),
    "llama-13b": PriceSheet(0.0004, 0.0004),
    "llama-33b": PriceSheet(0.0009, 0.0009),
    "falcon-40b": PriceSheet(0.0011, 0.0011),
    "vicuna-7b": PriceSheet(0.0002, 0.0002),
    "vicuna-13b": PriceSheet(0.0004, 0.0004),
    "vicuna-33b": PriceSheet(0.0009, 0.0009),
}


def price_sheet(model_id: str) -> PriceSheet:
    """Price sheet for a model (fine-tuned ids map to their base model).

    Raises:
        EvaluationError: for unknown models.
    """
    base = model_id.split("+", 1)[0]
    try:
        return PRICES[base]
    except KeyError as exc:
        raise EvaluationError(f"no price sheet for model {model_id!r}") from exc


def tokens_cost_usd(
    model_id: str, prompt_tokens: int, completion_tokens: int
) -> Optional[float]:
    """USD cost of one call, or ``None`` for unpriced models.

    Metering must never fail an evaluation over a missing price row, so
    unknown models degrade to token-only accounting rather than raising.
    """
    try:
        sheet = price_sheet(model_id)
    except EvaluationError:
        return None
    return (
        prompt_tokens / 1000.0 * sheet.prompt_per_1k
        + completion_tokens / 1000.0 * sheet.completion_per_1k
    )


class CostMeter:
    """Records per-call token counts and simulated dollar cost.

    One meter per metrics registry; every recording site (the pipeline's
    generate artifact, the serving coalescer) funnels through
    :meth:`record`, which stamps the attribution labels bound in the
    calling thread's :mod:`~repro.obs.context` — or an explicitly
    captured snapshot, for calls completed on another thread.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def record(
        self,
        model_id: str,
        prompt_tokens: int,
        completion_tokens: int,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Count one LLM call's tokens and price them.

        ``labels`` overrides the ambient context (both are filtered to
        :data:`~repro.obs.context.METRIC_LABEL_KEYS` — the request id
        never becomes a metric label).  Zero-token calls record nothing,
        so cache hits stay free.
        """
        if prompt_tokens <= 0 and completion_tokens <= 0:
            return
        source = labels if labels is not None else context.snapshot()
        stamped = {
            key: str(source[key])
            for key in context.METRIC_LABEL_KEYS
            if source.get(key)
        }
        stamped["model"] = model_id
        if prompt_tokens > 0:
            self.registry.counter_add(
                M_LLM_TOKENS, prompt_tokens, {**stamped, "kind": "prompt"}
            )
        if completion_tokens > 0:
            self.registry.counter_add(
                M_LLM_TOKENS, completion_tokens,
                {**stamped, "kind": "completion"},
            )
        cost = tokens_cost_usd(model_id, prompt_tokens, completion_tokens)
        if cost is not None and cost > 0:
            self.registry.counter_add(M_LLM_COST, cost, stamped)
