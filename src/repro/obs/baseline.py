"""Benchmark baselines: ``BENCH_*.json`` snapshots and regression diffs.

The benchmarks (``bench_substrate``, ``bench_serve``) distil each run
into a flat metric dict — speedups, overhead shares, latency quantiles,
tokens per question.  ``--baseline-out`` persists that dict as a
snapshot; ``--baseline-compare`` (and ``dail-sql obs diff``) replays a
later run against it and fails on regressions.

Snapshot schema (``version`` = :data:`BASELINE_VERSION`)::

    {
      "version": 1,
      "kind": "substrate" | "serve",
      "build": {…},                     # repro_build_info labels
      "metrics": {"engine_speedup": 2.4, …},
      "directions": {"engine_speedup": "higher", …},
      "meta": {…}                       # free-form run facts
    }

Each metric declares which way is better: ``higher`` (speedups,
throughput), ``lower`` (overheads, latencies, drop counts) or ``info``
(recorded for trend lines, never gated — absolute wall-clock numbers
vary too much across machines to fail CI on).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import ReproError
from .build import build_info_labels

#: Bump when the snapshot schema above changes shape.
BASELINE_VERSION = 1

#: Valid metric directions.
DIRECTIONS = ("higher", "lower", "info")


def write_baseline(
    path: Union[str, Path],
    kind: str,
    metrics: Mapping[str, float],
    directions: Mapping[str, str],
    meta: Optional[Mapping[str, object]] = None,
) -> Path:
    """Persist one benchmark run as a baseline snapshot.

    Raises:
        ReproError: on unknown directions or directionless metrics.
    """
    for name in metrics:
        direction = directions.get(name)
        if direction not in DIRECTIONS:
            raise ReproError(
                f"metric {name!r} needs a direction in {DIRECTIONS}, "
                f"got {direction!r}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": BASELINE_VERSION,
        "kind": kind,
        "build": build_info_labels(),
        "metrics": {name: float(value) for name, value in metrics.items()},
        "directions": dict(directions),
        "meta": dict(meta or {}),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    """Read a snapshot back, validating shape and version.

    Raises:
        ReproError: on missing files, bad JSON or unknown versions.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such baseline file: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ReproError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise ReproError(f"baseline {path} has no metrics dict")
    if payload.get("version") != BASELINE_VERSION:
        raise ReproError(
            f"baseline {path} has version {payload.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    return payload


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two snapshots."""

    metric: str
    direction: str
    baseline: float
    current: float
    #: Signed relative change, oriented so positive = worse (regression
    #: direction); ``inf`` when a lower-is-better metric left zero.
    change: float
    threshold: float
    regressed: bool


def diff_baselines(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    threshold: float = 0.1,
    thresholds: Optional[Mapping[str, float]] = None,
) -> Tuple[List[MetricDelta], List[MetricDelta]]:
    """Compare two snapshots metric-by-metric.

    ``threshold`` is the default allowed relative slip; ``thresholds``
    overrides it per metric.  Only metrics present in *both* snapshots
    are compared; ``info`` metrics are reported but never regress.

    Returns:
        ``(regressions, rows)`` — the failing subset, and every
        compared metric for display.
    """
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    directions = {
        **baseline.get("directions", {}),  # type: ignore[dict-item]
        **current.get("directions", {}),  # type: ignore[dict-item]
    }
    rows: List[MetricDelta] = []
    for name in sorted(set(base_metrics) & set(cur_metrics)):
        direction = directions.get(name, "info")
        base = float(base_metrics[name])
        cur = float(cur_metrics[name])
        allowed = float((thresholds or {}).get(name, threshold))
        change = _worseness(direction, base, cur)
        regressed = direction != "info" and change > allowed
        rows.append(MetricDelta(
            metric=name, direction=direction, baseline=base, current=cur,
            change=change, threshold=allowed, regressed=regressed,
        ))
    return [row for row in rows if row.regressed], rows


def _worseness(direction: str, base: float, cur: float) -> float:
    """Relative slip in the regression direction (positive = worse)."""
    if direction == "higher":
        if base <= 0:
            return 0.0 if cur >= base else float("inf")
        return (base - cur) / base
    if direction == "lower":
        if base <= 0:
            return float("inf") if cur > base else 0.0
        return (cur - base) / base
    return 0.0


def format_diff(rows: List[MetricDelta]) -> str:
    """Human-readable comparison table, regressions flagged."""
    header = f"{'metric':<28} {'dir':<6} {'baseline':>12} {'current':>12} {'change':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        change = "   n/a" if row.direction == "info" else f"{row.change:+8.1%}"
        flag = "  REGRESSED" if row.regressed else ""
        lines.append(
            f"{row.metric:<28} {row.direction:<6} {row.baseline:>12.4f} "
            f"{row.current:>12.4f} {change:>9}{flag}"
        )
    return "\n".join(lines)
