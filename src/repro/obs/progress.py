"""Live run introspection: a throttled status line on stderr.

:class:`ProgressReporter` is a
:data:`~repro.eval.engine.ProgressCallback`: the engine calls it (under
a lock) after every finished example.  It combines the event stream
(done/total/errors) with snapshots of the run's
:class:`~repro.obs.metrics.MetricsRegistry` — per-stage latency
quantiles, cache hit rates, worker utilization — into one line,
redrawn in place (carriage return) at most every ``min_interval_s``::

    [ 37/144]  12.4 ex/s  util 87%  err 1  generate p50 18ms p95 61ms  gen cache 72%

The reporter throttles *rendering*, not accounting, so the final state
is always exact; :meth:`close` forces a last render and a newline.
It duck-types on the event (``done``/``total``/``error``) rather than
importing the eval layer, keeping ``repro.obs`` dependency-free.
"""

from __future__ import annotations

import sys
import time
from threading import Lock
from typing import Callable, Optional, TextIO

from .metrics import (
    M_BUSY_SECONDS,
    M_CACHE_REQUESTS,
    M_STAGE_LATENCY,
    MetricsRegistry,
)


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.0f}ms"


class ProgressReporter:
    """Renders run progress to a stream; usable as a progress callback.

    Args:
        stream: output stream (default ``sys.stderr``).
        registry: the run's metrics registry — pass the same instance to
            the engine so the status line can show stage quantiles and
            cache hit rates.  A private registry (no live quantiles) is
            created when omitted.
        workers: worker count, for the utilization figure.
        min_interval_s: minimum delay between redraws.
        clock: injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        registry: Optional[MetricsRegistry] = None,
        workers: int = 1,
        min_interval_s: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry if registry is not None else MetricsRegistry()
        self.workers = max(1, workers)
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._lock = Lock()
        self._start: Optional[float] = None
        self._last_render = float("-inf")
        self._last_width = 0
        self._done = 0
        self._total = 0
        self._errors = 0
        self._closed = False

    # -- the callback --------------------------------------------------------

    def __call__(self, event) -> None:
        """Account one finished example; redraw when the throttle allows."""
        with self._lock:
            if self._closed:
                return
            now = self._clock()
            if self._start is None:
                self._start = now
            self._done = event.done
            self._total = event.total
            if getattr(event, "error", ""):
                self._errors += 1
            due = now - self._last_render >= self.min_interval_s
            if not (due or self._done >= self._total):
                return
            self._last_render = now
            line = self._compose(now)
        self._write(line)

    # -- rendering -----------------------------------------------------------

    def _compose(self, now: float) -> str:
        # Floor elapsed at one render interval: the first event arrives
        # with elapsed ~ 0, and an unfloored division would render an
        # astronomical rate/utilization on the opening line.
        elapsed = max(now - (self._start if self._start is not None else now),
                      self.min_interval_s, 1e-9)
        rate = self._done / elapsed
        width = len(str(self._total))
        parts = [
            f"[{self._done:>{width}}/{self._total}]",
            f"{rate:5.1f} ex/s",
        ]
        busy = self.registry.counter_value(M_BUSY_SECONDS)
        if busy > 0:
            utilization = busy / (self.workers * elapsed)
            parts.append(f"util {utilization:3.0%}")
        parts.append(f"err {self._errors}")
        parts.extend(self._stage_quantiles())
        cache_line = self._cache_rate("generate")
        if cache_line:
            parts.append(cache_line)
        return "  ".join(parts)

    def _stage_quantiles(self):
        """p50/p95 of the slowest stage (by sample mass × p50) so far."""
        best = None
        for stage in ("generate", "execute", "select", "build", "extract",
                      "score"):
            count = self.registry.histogram_count(
                M_STAGE_LATENCY, {"stage": stage}
            )
            if not count:
                continue
            p50 = self.registry.histogram_quantile(
                M_STAGE_LATENCY, 0.5, {"stage": stage}
            )
            weight = count * p50
            if best is None or weight > best[0]:
                best = (weight, stage, p50)
        if best is None:
            return []
        _, stage, p50 = best
        p95 = self.registry.histogram_quantile(
            M_STAGE_LATENCY, 0.95, {"stage": stage}
        )
        return [
            f"{stage} p50 {_format_seconds(p50)} p95 {_format_seconds(p95)}"
        ]

    def _cache_rate(self, artifact: str) -> str:
        hits = self.registry.counter_value(
            M_CACHE_REQUESTS, {"stage": artifact, "result": "hit"}
        )
        misses = self.registry.counter_value(
            M_CACHE_REQUESTS, {"stage": artifact, "result": "miss"}
        )
        total = hits + misses
        if not total:
            return ""
        return f"{artifact[:3]} cache {hits / total:3.0%}"

    def _write(self, line: str) -> None:
        padded = line.ljust(self._last_width)
        self._last_width = len(line)
        try:
            self.stream.write("\r" + padded)
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go quiet
            self._closed = True

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Force a final render and move to a fresh line."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            line = self._compose(self._clock()) if self._total else ""
        if line:
            self._write(line)
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
