"""Structured tracing: per-run span trees streamed to a JSONL file.

A :class:`Tracer` writes one JSON object per finished span, as it
finishes — a crashed run keeps every completed span.  Span kinds form a
fixed hierarchy::

    run ─► cell ─► example ─► stage (select/build/generate/…)

Trace schema (``v`` = :data:`TRACE_SCHEMA_VERSION`), one object per line:

========== =====================================================
field      meaning
========== =====================================================
``v``      trace schema version (int)
``kind``   ``run`` | ``cell`` | ``example`` | ``stage``
``name``   run id / cell label / example id / stage name
``span``   span id, unique within the file (hex string)
``parent`` parent span id (``""`` for the run span)
``t0``     wall-clock start, seconds since the epoch (float)
``dur_s``  inclusive duration in seconds (float)
``attrs``  flat attribute dict (see below)
========== =====================================================

Attribute conventions: ``cell`` (config label) on cell/example/stage
spans; ``hardness``, ``representation``, ``k``, ``prompt_tokens``,
``error_class``/``error`` on example spans; ``excl_s`` (exclusive time,
child stages subtracted) and ``cache_<artifact>_hit``/``_miss`` counters
on stage spans.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``enabled``
flag lets call sites skip even attribute assembly — an uninstrumented
run pays one attribute check per span site.  Writes are best-effort: an
I/O failure disables the tracer rather than failing the evaluation.
"""

from __future__ import annotations

import gzip
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Bump when the line schema above changes shape.
TRACE_SCHEMA_VERSION = 1

#: Environment variable naming the trace-file directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Environment variable capping each trace file's size in megabytes;
#: when a file crosses the cap it is rotated aside as a numbered
#: ``<name>.NNN.jsonl`` segment and writing continues in a fresh file.
#: Unset or ``0`` disables rotation.
TRACE_MAX_MB_ENV = "REPRO_TRACE_MAX_MB"

#: Environment variable (``1``/``true``/``yes``) gzip-compressing
#: rotated segments to ``.jsonl.gz``; readers handle both transparently.
TRACE_GZIP_ENV = "REPRO_TRACE_GZIP"


class Span:
    """Handle for one open span: set attributes before it closes."""

    __slots__ = ("kind", "name", "span_id", "parent_id", "attrs", "t0", "_start")

    def __init__(self, kind: str, name: str, span_id: str, parent_id: str,
                 attrs: Dict[str, object]):
        self.kind = kind
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.t0 = time.time()
        self._start = time.perf_counter()

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def inc(self, key: str, delta: int = 1) -> None:
        """Increment a counter-style attribute (e.g. per-artifact cache hits)."""
        self.attrs[key] = int(self.attrs.get(key, 0)) + delta


class _NullSpan:
    """No-op span handle yielded by the :class:`NullTracer`."""

    __slots__ = ()
    kind = name = span_id = parent_id = ""

    def set(self, key: str, value: object) -> None:
        pass

    def inc(self, key: str, delta: int = 1) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Streams spans of one run to a JSONL trace file.

    Thread-safe: spans opened on a worker thread parent onto that
    thread's innermost open span (a thread-local stack), or onto an
    explicit ``parent_id`` — the engine passes cell span ids into
    worker threads this way.

    Args:
        path: the trace file (parents created; appended to if present).
        max_bytes: rotate the file aside once it grows past this many
            bytes (``None`` disables rotation — the default).
        compress: gzip rotated segments (``.jsonl.gz``); the active file
            stays plain JSONL so a crash never loses a partial window.
    """

    enabled = True

    def __init__(self, path: Union[str, Path],
                 max_bytes: Optional[int] = None, compress: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.compress = compress
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = self.path.stat().st_size if self.path.exists() else 0
        self._segment = sum(
            1 for _ in self.path.parent.glob(self.path.stem + ".[0-9]*")
        )
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{self._next_id:x}"

    @contextmanager
    def span(self, kind: str, name: str, parent_id: Optional[str] = None,
             **attrs) -> Iterator[Span]:
        """Open a span; it is written (one JSONL line) when it closes."""
        stack = self._stack()
        if parent_id is None:
            parent_id = stack[-1].span_id if stack else ""
        handle = Span(kind, name, self._new_id(), parent_id, dict(attrs))
        stack.append(handle)
        try:
            yield handle
        finally:
            stack.pop()
            self._write(handle)

    def current_span(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _write(self, span: Span) -> None:
        record = {
            "v": TRACE_SCHEMA_VERSION,
            "kind": span.kind,
            "name": span.name,
            "span": span.span_id,
            "parent": span.parent_id,
            "t0": span.t0,
            "dur_s": time.perf_counter() - span._start,
            "attrs": span.attrs,
        }
        try:
            line = json.dumps(record, default=str)
        except (TypeError, ValueError):  # pragma: no cover - attrs are scalars
            return
        with self._lock:
            if self._handle.closed:
                return
            try:
                self._handle.write(line + "\n")
                self._bytes += len(line) + 1
                if self.max_bytes is not None and self._bytes >= self.max_bytes:
                    self._rotate_locked()
            except OSError:  # pragma: no cover - disk full etc.
                self.enabled = False

    def _rotate_locked(self) -> None:
        """Move the full file aside as a numbered segment and reopen.

        Called under ``self._lock``.  Rotation is best-effort like every
        other write: an I/O failure disables the tracer.
        """
        self._handle.close()
        self._segment += 1
        segment = self.path.with_name(
            f"{self.path.stem}.{self._segment:03d}.jsonl"
        )
        os.replace(self.path, segment)
        if self.compress:
            with open(segment, "rb") as plain, \
                    gzip.open(f"{segment}.gz", "wb") as packed:
                packed.write(plain.read())
            os.unlink(segment)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = 0

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer:
    """Zero-overhead tracer: call sites guard on ``enabled`` and skip."""

    enabled = False
    path: Optional[Path] = None

    @contextmanager
    def span(self, kind: str, name: str, parent_id: Optional[str] = None,
             **attrs) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def current_span(self) -> None:
        return None

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op instance; safe to use from any thread.
NULL_TRACER = NullTracer()


# -- process-wide configuration ----------------------------------------------

_configured_dir: Optional[Path] = None
_config_lock = threading.Lock()
_file_seq = 0


def configure_trace_dir(path: Optional[Union[str, Path]]) -> None:
    """Set the trace directory for subsequently built tracers.

    The CLI's ``--trace-dir`` flag lands here; it takes precedence over
    the ``REPRO_TRACE_DIR`` environment variable.  ``None`` reverts to
    the environment.
    """
    global _configured_dir
    with _config_lock:
        _configured_dir = Path(path) if path is not None else None


def resolved_trace_dir() -> Optional[Path]:
    """The active trace directory, or ``None`` (tracing disabled)."""
    with _config_lock:
        if _configured_dir is not None:
            return _configured_dir
    env = os.environ.get(TRACE_DIR_ENV, "").strip()
    return Path(env) if env else None


def _env_rotation() -> tuple:
    """(max_bytes, compress) from the rotation environment variables."""
    raw = os.environ.get(TRACE_MAX_MB_ENV, "").strip()
    max_bytes: Optional[int] = None
    if raw:
        try:
            megabytes = float(raw)
        except ValueError:
            megabytes = 0.0
        if megabytes > 0:
            max_bytes = int(megabytes * 1024 * 1024)
    compress = os.environ.get(TRACE_GZIP_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )
    return max_bytes, compress


def build_tracer(
    trace_dir: Optional[Union[str, Path]] = None,
) -> Union[Tracer, NullTracer]:
    """A tracer honouring the configured trace directory.

    ``trace_dir`` overrides; otherwise ``--trace-dir`` /
    ``REPRO_TRACE_DIR`` decide.  With no directory configured the
    :data:`NULL_TRACER` is returned, so call sites never branch on
    configuration themselves.  Each call gets a fresh file —
    ``trace-<utc stamp>-<pid>-<seq>.jsonl`` — so concurrent runs and
    repeated sweeps in one process never interleave.  Rotation honours
    ``REPRO_TRACE_MAX_MB`` / ``REPRO_TRACE_GZIP`` (see :class:`Tracer`).
    """
    global _file_seq
    if trace_dir is None:
        trace_dir = resolved_trace_dir()
    if trace_dir is None:
        return NULL_TRACER
    with _config_lock:
        _file_seq += 1
        seq = _file_seq
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    name = f"trace-{stamp}-{os.getpid()}-{seq}.jsonl"
    max_bytes, compress = _env_rotation()
    return Tracer(Path(trace_dir) / name, max_bytes=max_bytes,
                  compress=compress)
