"""Read and analyse trace files: where did the wall-clock go?

The ``dail-sql trace`` subcommand is a thin shell over these functions.
A trace path may be one ``.jsonl`` file or a directory of them (every
``trace-*.jsonl`` a run dropped there); spans are the dicts written by
:class:`~repro.obs.trace.Tracer` (see that module for the schema).

Percentiles here are *exact* (computed from raw span durations), unlike
the bucketed estimates the live progress line shows.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..errors import ReproError
from .metrics import (
    LATENCY_BUCKETS,
    M_ERRORS,
    M_EXAMPLES,
    M_STAGE_LATENCY,
    M_STAGE_SECONDS,
    MetricsRegistry,
)
from .trace import TRACE_SCHEMA_VERSION

Span = Dict[str, object]


def _open_trace(path: Path):
    """Open a trace file for text reading, gunzipping ``.gz`` segments."""
    if path.name.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def load_spans(path: Union[str, Path]) -> List[Span]:
    """Every span of a trace file, or of every ``*.jsonl`` /
    ``*.jsonl.gz`` in a directory (rotated segments included).

    Unreadable lines and unknown schema versions are skipped (a trace
    from a crashed run may end mid-line); missing paths raise.

    Raises:
        ReproError: when the path does not exist or holds no spans.
    """
    path = Path(path)
    if path.is_dir():
        files = sorted(path.glob("*.jsonl")) + sorted(path.glob("*.jsonl.gz"))
        if not files:
            raise ReproError(f"no *.jsonl trace files in {path}")
    elif path.exists():
        files = [path]
    else:
        raise ReproError(f"no such trace file or directory: {path}")
    spans: List[Span] = []
    for file in files:
        with _open_trace(file) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if record.get("v") != TRACE_SCHEMA_VERSION:
                    continue
                spans.append(record)
    if not spans:
        raise ReproError(f"no spans found under {path}")
    return spans


def percentile(values: List[float], q: float) -> float:
    """Exact linear-interpolated percentile (0.0 on empty input)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def _attr(span: Span, key: str, default=""):
    attrs = span.get("attrs")
    if isinstance(attrs, dict):
        return attrs.get(key, default)
    return default


def _duration(span: Span) -> float:
    return float(span.get("dur_s", 0.0))


def _exclusive(span: Span) -> float:
    """Exclusive stage time (child stages subtracted), falling back to
    the inclusive duration for spans without the attribute."""
    excl = _attr(span, "excl_s", None)
    if excl is None:
        return _duration(span)
    return float(excl)


def spans_of_kind(spans: Iterable[Span], kind: str) -> List[Span]:
    return [span for span in spans if span.get("kind") == kind]


# -- aggregations ------------------------------------------------------------

def stage_summary(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Per-stage rows: count, total (exclusive) seconds, p50/p95, share."""
    groups: Dict[str, List[Span]] = {}
    for span in spans_of_kind(spans, "stage"):
        groups.setdefault(str(span.get("name")), []).append(span)
    total_s = sum(_exclusive(s) for group in groups.values() for s in group)
    rows = []
    for name, group in groups.items():
        durations = [_duration(s) for s in group]
        stage_total = sum(_exclusive(s) for s in group)
        rows.append({
            "stage": name,
            "count": len(group),
            "total_s": stage_total,
            "share": stage_total / total_s if total_s else 0.0,
            "p50_s": percentile(durations, 0.5),
            "p95_s": percentile(durations, 0.95),
        })
    rows.sort(key=lambda row: -row["total_s"])
    return rows


def hardness_summary(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Per-hardness rows over example spans: count, time, errors."""
    groups: Dict[str, List[Span]] = {}
    for span in spans_of_kind(spans, "example"):
        groups.setdefault(str(_attr(span, "hardness", "unknown")), []).append(span)
    rows = []
    for hardness in ("easy", "medium", "hard", "extra"):
        group = groups.pop(hardness, [])
        if group:
            rows.append(_example_group_row(hardness, group, key="hardness"))
    for hardness in sorted(groups):
        rows.append(_example_group_row(hardness, groups[hardness], key="hardness"))
    return rows


def cell_summary(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Per-config-cell rows over example spans."""
    groups: Dict[str, List[Span]] = {}
    for span in spans_of_kind(spans, "example"):
        groups.setdefault(str(_attr(span, "cell", "?")), []).append(span)
    return [
        _example_group_row(cell, groups[cell], key="cell")
        for cell in sorted(groups)
    ]


def _example_group_row(name: str, group: List[Span], key: str) -> Dict[str, object]:
    durations = [_duration(s) for s in group]
    return {
        key: name,
        "count": len(group),
        "total_s": sum(durations),
        "p50_s": percentile(durations, 0.5),
        "p95_s": percentile(durations, 0.95),
        "errors": sum(1 for s in group if _attr(s, "error_class")),
    }


def slowest(spans: Iterable[Span], kind: str = "example",
            top: int = 10) -> List[Span]:
    """The ``top`` slowest spans of one kind, slowest first."""
    ranked = sorted(spans_of_kind(spans, kind), key=_duration, reverse=True)
    return ranked[:top]


def error_groups(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Isolated per-example failures grouped by error class."""
    groups: Dict[str, List[Span]] = {}
    for span in spans_of_kind(spans, "example"):
        error_class = str(_attr(span, "error_class", ""))
        if error_class:
            groups.setdefault(error_class, []).append(span)
    rows = []
    for error_class in sorted(groups, key=lambda c: -len(groups[c])):
        group = groups[error_class]
        rows.append({
            "error_class": error_class,
            "count": len(group),
            "examples": [str(s.get("name")) for s in group],
            "messages": sorted({str(_attr(s, "error", ""))[:120] for s in group}),
        })
    return rows


def run_info(spans: Iterable[Span]) -> Optional[Dict[str, object]]:
    """The run span's headline facts, if the trace holds one."""
    runs = spans_of_kind(spans, "run")
    if not runs:
        return None
    run = runs[0]
    return {
        "duration_s": _duration(run),
        "configs": _attr(run, "configs", 0),
        "examples": _attr(run, "examples", 0),
        "workers": _attr(run, "workers", 1),
        "backend": _attr(run, "backend", ""),
    }


def stage_totals(spans: Iterable[Span],
                 cell: Optional[str] = None) -> Dict[str, float]:
    """Exclusive per-stage second totals (optionally for one cell) —
    the quantity that must reconcile with ``RunTelemetry.stage_s``."""
    totals: Dict[str, float] = {}
    for span in spans_of_kind(spans, "stage"):
        if cell is not None and _attr(span, "cell") != cell:
            continue
        name = str(span.get("name"))
        totals[name] = totals.get(name, 0.0) + _exclusive(span)
    return totals


# -- request correlation ------------------------------------------------------

def request_ids(spans: Iterable[Span]) -> List[str]:
    """Distinct serving request ids present in a trace, in first-seen
    order (the names of ``request``-kind spans)."""
    seen: Dict[str, None] = {}
    for span in spans_of_kind(spans, "request"):
        seen.setdefault(str(span.get("name")), None)
    return list(seen)


def correlate(spans: Iterable[Span], request_id: str) -> Dict[str, object]:
    """One request's full span tree, rooted at its ``request`` span.

    Children are linked by parent span id — this follows a request
    across threads, because the coalescer parents its per-member batch
    spans onto the request's own ``generate`` stage span even though
    the batch was dispatched elsewhere.  Spans stamped with a matching
    ``request`` attribute whose parent chain was lost (e.g. a rotated
    segment) are adopted under the root, so the tree stays single-rooted.

    Returns a nested node dict: ``{"span": <span>, "children": [node…]}``
    with children ordered by start time.

    Raises:
        ReproError: when the trace holds no such request (the message
            lists the ids it does hold).
    """
    spans = list(spans)
    roots = [
        span for span in spans_of_kind(spans, "request")
        if str(span.get("name")) == request_id
    ]
    if not roots:
        known = request_ids(spans)
        listing = ", ".join(known[:20]) if known else "none"
        raise ReproError(
            f"no request {request_id!r} in trace (request ids: {listing})"
        )
    root = max(roots, key=lambda span: float(span.get("t0", 0.0)))
    children: Dict[str, List[Span]] = {}
    for span in spans:
        children.setdefault(str(span.get("parent", "")), []).append(span)

    reached = set()

    def build(span: Span) -> Dict[str, object]:
        reached.add(str(span.get("span")))
        kids = sorted(
            children.get(str(span.get("span")), []),
            key=lambda child: float(child.get("t0", 0.0)),
        )
        return {"span": span, "children": [build(kid) for kid in kids]}

    tree = build(root)
    orphans = [
        span for span in spans
        if str(_attr(span, "request", "")) == request_id
        and str(span.get("span")) not in reached
    ]
    for orphan in sorted(orphans, key=lambda span: float(span.get("t0", 0.0))):
        tree["children"].append(build(orphan))
    return tree


def format_span_tree(tree: Dict[str, object]) -> str:
    """Render a :func:`correlate` tree as indented text lines."""
    lines: List[str] = []

    def emit(node: Dict[str, object], depth: int) -> None:
        span = node["span"]
        attrs = span.get("attrs") or {}
        decorations = " ".join(
            f"{key}={_format_attr(value)}"
            for key, value in sorted(attrs.items())
        )
        lines.append(
            "  " * depth
            + f"{span.get('kind')} {span.get('name')} "
            + f"[{_duration(span) * 1000:.1f}ms]"
            + (f" {decorations}" if decorations else "")
        )
        for child in node["children"]:
            emit(child, depth + 1)

    emit(tree, 0)
    return "\n".join(lines)


def _format_attr(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# -- exporters ---------------------------------------------------------------

def to_registry(spans: Iterable[Span]) -> MetricsRegistry:
    """Rebuild a metrics registry from a trace (for offline export).

    Stage spans feed the stage counters and latency histograms; example
    spans feed example/error counters per cell — the same metric names
    a live run records, so dashboards can consume either source.
    """
    registry = MetricsRegistry()
    for span in spans:
        kind = span.get("kind")
        if kind == "stage":
            labels = {"stage": str(span.get("name"))}
            cell = _attr(span, "cell")
            registry.counter_add(
                M_STAGE_SECONDS, _exclusive(span),
                {**labels, **({"cell": cell} if cell else {})},
            )
            registry.observe(M_STAGE_LATENCY, _duration(span), labels,
                             buckets=LATENCY_BUCKETS)
        elif kind == "example":
            cell = _attr(span, "cell")
            labels = {"cell": cell} if cell else {}
            registry.counter_add(M_EXAMPLES, 1, labels)
            if _attr(span, "error_class"):
                registry.counter_add(M_ERRORS, 1, labels)
    return registry


def to_prometheus(spans: Iterable[Span]) -> str:
    """Prometheus text exposition of a trace's aggregate metrics."""
    return to_registry(spans).to_prometheus()
