"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric of one evaluation run.
Metrics are identified by ``(name, labels)`` — the Prometheus data model
— and are fed by the telemetry collectors, the evaluation engine, the
LLM clients and the database pool.  Two export formats:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (suitable for a node-exporter textfile collector).
* :meth:`MetricsRegistry.snapshot` — a JSON-ready dict, written next to
  run artifacts and consumed by the live progress reporter.

Everything is thread-safe behind one lock; recording a sample is a dict
update, so instrumentation stays cheap enough to leave on everywhere.
The registry imports only the standard library (like ``repro.cache`` it
sits below every other layer).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Canonical metric names recorded across the evaluation stack.  Keeping
#: them here (rather than scattered string literals) makes the exported
#: namespace greppable and documented in one place.
M_STAGE_SECONDS = "repro_stage_seconds_total"
M_STAGE_LATENCY = "repro_stage_latency_seconds"
M_CACHE_REQUESTS = "repro_cache_requests_total"
M_CACHE_TIER = "repro_cache_tier_events_total"
M_EXAMPLES = "repro_examples_total"
M_ERRORS = "repro_errors_total"
M_BUSY_SECONDS = "repro_busy_seconds_total"
M_INFLIGHT = "repro_inflight_examples"
M_LLM_REQUEST = "repro_llm_request_seconds"
M_LLM_RETRIES = "repro_llm_retries_total"
M_LLM_PROMPT_TOKENS = "repro_llm_prompt_tokens"
M_LLM_COMPLETION_TOKENS = "repro_llm_completion_tokens"
M_DB_EXECUTE = "repro_db_execute_seconds"
M_DB_CONNECTIONS = "repro_db_connections"
M_LLM_CIRCUIT = "repro_llm_circuit_state"
M_FAULTS_INJECTED = "repro_faults_injected_total"
M_JOURNAL_SKIPPED = "repro_journal_skipped_total"
M_CACHE_CORRUPT = "repro_cache_corrupt_total"
M_DEADLINE_EXCEEDED = "repro_deadline_exceeded_total"
M_INTERRUPTIONS = "repro_interruptions_total"
M_LINT_DIAGNOSTICS = "repro_lint_diagnostics_total"
M_LINT_SHORT_CIRCUIT = "repro_lint_short_circuit_total"
M_HTTP_REQUESTS = "repro_http_requests_total"
M_HTTP_LATENCY = "repro_http_request_seconds"
M_SERVE_COALESCE_BATCH = "repro_serve_coalesce_batch_size"
M_SERVE_COALESCED = "repro_serve_coalesced_requests_total"
M_SERVE_RATE_LIMITED = "repro_serve_rate_limited_total"
M_SERVE_INFLIGHT = "repro_serve_inflight_requests"
M_SQL_TRANSPILE = "repro_sql_transpile_seconds_total"
M_LLM_TOKENS = "repro_llm_tokens_total"
M_LLM_COST = "repro_llm_cost_usd_total"
M_REPAIR_ROUNDS = "repro_repair_rounds_total"
M_REPAIR_RECOVERED = "repro_repair_recovered_total"
M_SEMANTIC_DEDUP = "repro_semantic_dedup_total"
M_BUILD_INFO = "repro_build_info"

#: Fixed batch-size buckets for the request coalescer histogram.
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)

#: Fixed latency buckets (seconds): sub-millisecond pipeline stages up
#: to multi-second remote API calls.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixed token-count buckets for prompt/completion size histograms.
TOKEN_BUCKETS = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

#: Canonical label-set encoding: sorted (key, value) string pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def labels_key(labels: Optional[Mapping[str, object]]) -> LabelKey:
    """The hashable canonical form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _matches(series_labels: LabelKey, subset: LabelKey) -> bool:
    """True when every (key, value) of ``subset`` appears in the series."""
    return set(subset) <= set(series_labels)


class _Histogram:
    """One histogram series: fixed bucket bounds, counts, sum."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = tuple(bounds)
        # counts[i] observations with value <= bounds[i]; counts[-1] = +Inf.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "_Histogram") -> None:
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0.0 with no samples).

        Uses the Prometheus convention: find the bucket the target rank
        falls into and interpolate linearly inside it; ranks in the
        overflow bucket report the highest finite bound.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            previous = cumulative
            cumulative += count
            if cumulative >= target:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                if count == 0:
                    return upper
                return lower + (upper - lower) * ((target - previous) / count)
        return self.bounds[-1]


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms.

    All record methods take an optional ``labels`` mapping; a metric
    name therefore holds a family of series, one per distinct label set
    (the Prometheus data model).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, _Histogram]] = {}
        self._histogram_bounds: Dict[str, Tuple[float, ...]] = {}

    # -- recording -----------------------------------------------------------

    def counter_add(
        self,
        name: str,
        value: float = 1.0,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        key = labels_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + value

    def gauge_set(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        with self._lock:
            self._gauges.setdefault(name, {})[labels_key(labels)] = value

    def gauge_add(
        self,
        name: str,
        delta: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        key = labels_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            series[key] = series.get(key, 0.0) + delta

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        """Record one histogram sample (first call fixes the buckets)."""
        key = labels_key(labels)
        with self._lock:
            bounds = self._histogram_bounds.setdefault(name, tuple(buckets))
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = _Histogram(bounds)
            histogram.observe(value)

    # -- reading -------------------------------------------------------------

    def counter_value(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> float:
        """Sum of every series of ``name`` whose labels include ``labels``."""
        subset = labels_key(labels)
        with self._lock:
            return sum(
                value
                for key, value in self._counters.get(name, {}).items()
                if _matches(key, subset)
            )

    def counter_series(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> List[Tuple[Dict[str, str], float]]:
        """Every series of one counter matching the label subset."""
        subset = labels_key(labels)
        with self._lock:
            return [
                (dict(key), value)
                for key, value in self._counters.get(name, {}).items()
                if _matches(key, subset)
            ]

    def gauge_value(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> float:
        subset = labels_key(labels)
        with self._lock:
            return sum(
                value
                for key, value in self._gauges.get(name, {}).items()
                if _matches(key, subset)
            )

    def histogram_quantile(
        self,
        name: str,
        q: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> float:
        """Quantile estimate over every matching series, merged."""
        subset = labels_key(labels)
        with self._lock:
            bounds = self._histogram_bounds.get(name)
            if bounds is None:
                return 0.0
            merged = _Histogram(bounds)
            for key, histogram in self._histograms.get(name, {}).items():
                if _matches(key, subset):
                    merged.merge(histogram)
        return merged.quantile(q)

    def histogram_count(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> int:
        subset = labels_key(labels)
        with self._lock:
            return sum(
                h.count
                for key, h in self._histograms.get(name, {}).items()
                if _matches(key, subset)
            )

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump of every metric (stable ordering).

        The whole dump is assembled under the registry lock, so a
        snapshot is an atomic, internally consistent view: a histogram's
        bucket counts always sum to its ``count``, and no series is seen
        mid-update.
        """
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, object]:
        out: Dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            out["counters"][name] = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._counters[name].items())
            ]
        for name in sorted(self._gauges):
            out["gauges"][name] = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._gauges[name].items())
            ]
        for name in sorted(self._histograms):
            out["histograms"][name] = [
                {
                    "labels": dict(key),
                    "buckets": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for key, h in sorted(self._histograms[name].items())
            ]
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (textfile-collector ready).

        Like :meth:`snapshot`, the entire export is built under the
        registry lock: a scrape racing live counter updates still sees
        an atomic, parseable view — no histogram whose bucket counts
        disagree with its ``_count`` line, no half-applied increment.
        """
        with self._lock:
            return self._to_prometheus_locked()

    def _to_prometheus_locked(self) -> str:
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append(f"# TYPE {name} counter")
            for key, value in sorted(self._counters[name].items()):
                lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
        for name in sorted(self._gauges):
            lines.append(f"# TYPE {name} gauge")
            for key, value in sorted(self._gauges[name].items()):
                lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
        for name in sorted(self._histograms):
            lines.append(f"# TYPE {name} histogram")
            for key, h in sorted(self._histograms[name].items()):
                cumulative = 0
                for bound, count in zip(h.bounds, h.counts):
                    cumulative += count
                    le = _format_labels(key, extra=("le", _format_value(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += h.counts[-1]
                le = _format_labels(key, extra=("le", "+Inf"))
                lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(f"{name}_sum{_format_labels(key)} {_format_value(h.sum)}")
                lines.append(f"{name}_count{_format_labels(key)} {h.count}")
        return "\n".join(lines) + "\n"

    def scrape(self) -> Tuple[str, Dict[str, object]]:
        """Both export formats from **one** lock acquisition.

        A ``/metrics`` scrape that wants the Prometheus text *and* the
        JSON snapshot (or a trace export writing both artifacts) must
        not call :meth:`to_prometheus` and :meth:`snapshot` back to
        back — counters advance between the two calls and the pair
        disagrees.  ``scrape()`` builds both views under a single lock
        hold, so they describe exactly the same instant.
        """
        with self._lock:
            return self._to_prometheus_locked(), self._snapshot_locked()


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def parse_prometheus(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text back into (name, labels, value) samples.

    A deliberately strict reader used by the CI gate ("the Prometheus
    export parses cleanly") and the trace CLI tests.

    Raises:
        ValueError: on any malformed line.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no sample value in {line!r}")
        labels: Dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels in {line!r}")
            name, _, label_blob = name_part[:-1].partition("{")
            for pair in _split_label_pairs(label_blob):
                key, eq, raw = pair.partition("=")
                if not eq or not (raw.startswith('"') and raw.endswith('"')):
                    raise ValueError(f"line {lineno}: bad label {pair!r}")
                labels[key] = _unescape_label(raw[1:-1])
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        if value_part == "+Inf":
            value = float("inf")
        else:
            value = float(value_part)
        samples.append((name, labels, value))
    return samples


def _unescape_label(value: str) -> str:
    """Invert :func:`_escape_label` (``\\n``, ``\\"``, ``\\\\``)."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _split_label_pairs(blob: str) -> List[str]:
    """Split ``k1="v1",k2="v2"`` respecting quotes and escapes."""
    pairs: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\" and in_quotes:
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
