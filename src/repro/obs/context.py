"""Thread-local observability context: labels that follow a request.

A serving request enters on one HTTP thread, its generate call may be
dispatched from the coalescer's thread, and a sweep evaluates examples
on arbitrary pool workers — yet token counts, journal entries and spans
all need to say *which* cell/tenant/request produced them.  This module
carries that attribution as a small thread-local stack of label dicts:

* :func:`bind` pushes labels for the duration of a ``with`` block
  (entries shadow outer bindings key-by-key);
* :func:`snapshot` returns the merged view — a plain dict that can be
  captured on one thread and carried to another (the coalescer stores
  it on each queued entry);
* :func:`current_request_id` is the common special case.

Only short, low-cardinality strings belong here (``cell``, ``tenant``,
``backend``, ``stage``, ``request_id``).  The request id is *never*
used as a metric label — it would explode series cardinality — it only
flows into spans, journal entries and the access log.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List

#: Context keys the :class:`~repro.obs.cost.CostMeter` copies onto
#: token/cost metric labels (deliberately excludes ``request_id``).
METRIC_LABEL_KEYS = ("cell", "tenant", "backend", "stage")

_local = threading.local()


def _stack() -> List[Dict[str, str]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextmanager
def bind(**labels: str) -> Iterator[None]:
    """Push labels onto the calling thread's context for the block.

    Empty values are dropped (so call sites can pass them through
    unconditionally); inner bindings shadow outer ones per key.
    """
    frame = {key: str(value) for key, value in labels.items() if value}
    stack = _stack()
    stack.append(frame)
    try:
        yield
    finally:
        stack.pop()


def snapshot() -> Dict[str, str]:
    """The merged label view of the calling thread (innermost wins).

    The returned dict is a copy — safe to store and read from another
    thread (how the coalescer preserves attribution across dispatch).
    """
    merged: Dict[str, str] = {}
    for frame in _stack():
        merged.update(frame)
    return merged


def get(key: str, default: str = "") -> str:
    """One context value, innermost binding first."""
    for frame in reversed(_stack()):
        if key in frame:
            return frame[key]
    return default


def current_request_id() -> str:
    """The serving request id bound on this thread ("" outside serve)."""
    return get("request_id")
