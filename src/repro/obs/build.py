"""Build metadata: the ``repro_build_info`` gauge.

Prometheus convention: an info-style gauge pinned to ``1`` whose labels
carry the interesting facts — package version plus the three wire/disk
schema versions a scrape or snapshot may need to interpret itself
(report persistence format, HTTP wire schema, trace schema).  Serving
registries and sweep registries both record it at startup, so every
``/metrics`` scrape, JSON snapshot and baseline file is self-describing.
"""

from __future__ import annotations

import platform
from typing import Dict

from .metrics import M_BUILD_INFO, MetricsRegistry


def build_info_labels(backend: str = "") -> Dict[str, str]:
    """The label set describing this build (schema versions included).

    Imports are deferred: ``repro.obs`` sits at the bottom of the layer
    diagram, so reaching up to the persistence/wire modules must happen
    at call time, never at import time.
    """
    from .. import __version__
    from ..api.wire import WIRE_SCHEMA_VERSION
    from ..eval.persistence import FORMAT_VERSION
    from .trace import TRACE_SCHEMA_VERSION

    labels = {
        "version": __version__,
        "report_format": str(FORMAT_VERSION),
        "wire": str(WIRE_SCHEMA_VERSION),
        "trace": str(TRACE_SCHEMA_VERSION),
        "python": platform.python_version(),
    }
    if backend:
        labels["backend"] = backend
    return labels


def record_build_info(registry: MetricsRegistry,
                      backend: str = "") -> Dict[str, str]:
    """Set ``repro_build_info{…} 1`` on a registry; returns the labels."""
    labels = build_info_labels(backend)
    registry.gauge_set(M_BUILD_INFO, 1, labels)
    return labels
