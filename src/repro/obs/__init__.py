"""Observability: structured tracing, metrics, live run introspection.

``repro.obs`` sits next to ``repro.cache`` at the bottom of the layer
diagram — standard library plus ``repro.errors`` only, importable from
anywhere without cycles.  Three pillars:

* :mod:`~repro.obs.trace` — per-run span trees (run → cell → example →
  stage) streamed to a JSONL trace file; :data:`~repro.obs.trace.NULL_TRACER`
  is the zero-overhead default.
* :mod:`~repro.obs.metrics` — a thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-bucket histograms with Prometheus-text and JSON exporters.
* :mod:`~repro.obs.progress` — a throttled live status line consuming
  the engine's progress events plus registry snapshots.

:mod:`~repro.obs.tracefile` reads trace files back for the ``dail-sql
trace`` subcommand (summary / slowest / errors / export).
"""

from .metrics import (
    LATENCY_BUCKETS,
    TOKEN_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)
from .progress import ProgressReporter
from .trace import (
    NULL_TRACER,
    TRACE_DIR_ENV,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    build_tracer,
    configure_trace_dir,
    resolved_trace_dir,
)

__all__ = [
    "LATENCY_BUCKETS", "TOKEN_BUCKETS", "MetricsRegistry",
    "parse_prometheus", "ProgressReporter", "NULL_TRACER", "TRACE_DIR_ENV",
    "TRACE_SCHEMA_VERSION", "NullTracer", "Span", "Tracer", "build_tracer",
    "configure_trace_dir", "resolved_trace_dir",
]
