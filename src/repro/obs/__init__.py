"""Observability: structured tracing, metrics, live run introspection.

``repro.obs`` sits next to ``repro.cache`` at the bottom of the layer
diagram — standard library plus ``repro.errors`` only, importable from
anywhere without cycles.  Three pillars:

* :mod:`~repro.obs.trace` — per-run span trees (run → cell → example →
  stage) streamed to a JSONL trace file; :data:`~repro.obs.trace.NULL_TRACER`
  is the zero-overhead default.
* :mod:`~repro.obs.metrics` — a thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-bucket histograms with Prometheus-text and JSON exporters.
* :mod:`~repro.obs.progress` — a throttled live status line consuming
  the engine's progress events plus registry snapshots.

:mod:`~repro.obs.tracefile` reads trace files back for the ``dail-sql
trace`` subcommand (summary / slowest / errors / export / correlate).

Observability v2 adds three more pillars:

* :mod:`~repro.obs.context` — a thread-local label stack carrying
  request attribution (cell, tenant, backend, stage, request id)
  across layers and threads;
* :mod:`~repro.obs.cost` — the :class:`~repro.obs.cost.CostMeter` and
  the paper's price sheet: prompt/completion tokens and simulated USD
  per model, stamped with the ambient context labels;
* :mod:`~repro.obs.baseline` / :mod:`~repro.obs.build` — benchmark
  snapshot/diff tooling (``BENCH_*.json``) and the self-describing
  ``repro_build_info`` gauge.
"""

from .baseline import (
    BASELINE_VERSION,
    diff_baselines,
    format_diff,
    load_baseline,
    write_baseline,
)
from .build import build_info_labels, record_build_info
from .cost import PRICES, CostMeter, PriceSheet, price_sheet
from .metrics import (
    LATENCY_BUCKETS,
    TOKEN_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)
from .progress import ProgressReporter
from .trace import (
    NULL_TRACER,
    TRACE_DIR_ENV,
    TRACE_GZIP_ENV,
    TRACE_MAX_MB_ENV,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    build_tracer,
    configure_trace_dir,
    resolved_trace_dir,
)

__all__ = [
    "BASELINE_VERSION", "diff_baselines", "format_diff", "load_baseline",
    "write_baseline", "build_info_labels", "record_build_info", "PRICES",
    "CostMeter", "PriceSheet", "price_sheet",
    "LATENCY_BUCKETS", "TOKEN_BUCKETS", "MetricsRegistry",
    "parse_prometheus", "ProgressReporter", "NULL_TRACER", "TRACE_DIR_ENV",
    "TRACE_GZIP_ENV", "TRACE_MAX_MB_ENV",
    "TRACE_SCHEMA_VERSION", "NullTracer", "Span", "Tracer", "build_tracer",
    "configure_trace_dir", "resolved_trace_dir",
]
