"""repro — reproduction of "Text-to-SQL Empowered by Large Language Models:
A Benchmark Evaluation" (DAIL-SQL, VLDB 2024).

Public API highlights (see README.md for a tour):

* :mod:`repro.sql` — SQL parsing, skeletons, hardness.
* :mod:`repro.schema` — schema model, serialisation, schema linking.
* :mod:`repro.dataset` — Spider-format corpora and the synthetic generator.
* :mod:`repro.db` — SQLite execution backend.
* :mod:`repro.prompt` — question representations and example organisations.
* :mod:`repro.selection` — example-selection strategies.
* :mod:`repro.llm` — the (simulated) LLM substrate, profiles, SFT.
* :mod:`repro.core` — the DAIL-SQL pipeline and baselines.
* :mod:`repro.eval` — exact-match / execution-accuracy evaluation harness.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

# Headline API, importable straight off the package: the things the
# README quickstart uses.  Subsystem internals stay in their modules.
from .core.dail_sql import DailSQL
from .dataset.generator.corpus import CorpusConfig, build_corpus
from .dataset.spider import Example, SpiderDataset
from .eval.harness import BenchmarkRunner, RunConfig
from .llm.oracle import GoldOracle
from .llm.simulated import make_llm
from .errors import (
    DatasetError,
    EvaluationError,
    ExecutionError,
    ExperimentError,
    ModelError,
    PromptError,
    ReproError,
    SchemaError,
    SQLSyntaxError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DailSQL", "CorpusConfig", "build_corpus", "Example", "SpiderDataset",
    "BenchmarkRunner", "RunConfig", "GoldOracle", "make_llm",
    "DatasetError", "EvaluationError", "ExecutionError", "ExperimentError",
    "ModelError", "PromptError", "ReproError", "SchemaError",
    "SQLSyntaxError",
]
