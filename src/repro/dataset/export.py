"""Export a generated corpus in the complete Spider directory layout.

Spider ships as::

    spider/
      tables.json
      train.json
      dev.json
      database/
        <db_id>/<db_id>.sqlite
        ...

``export_spider_layout`` writes exactly that from a
:class:`~repro.dataset.generator.corpus.Corpus`, so any external Spider
tooling (official evaluator, other Text-to-SQL systems) can consume the
synthetic benchmark unchanged; ``load_spider_layout`` reads such a
directory back (including real Spider downloads).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

from ..db.sqlite_backend import Database
from ..errors import DatasetError
from ..schema.model import schema_to_spider_entry
from .generator.corpus import Corpus
from .spider import SpiderDataset


def export_spider_layout(corpus: Corpus, directory: Union[str, Path]) -> Path:
    """Write the corpus as a Spider-layout directory.

    Returns the directory path.  Existing files are overwritten.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    schemas = {}
    schemas.update(corpus.train.schemas)
    schemas.update(corpus.dev.schemas)
    tables = [schema_to_spider_entry(s) for s in schemas.values()]
    (directory / "tables.json").write_text(json.dumps(tables, indent=1))

    for name, dataset in (("train", corpus.train), ("dev", corpus.dev)):
        entries = [e.to_json() for e in dataset.examples]
        (directory / f"{name}.json").write_text(json.dumps(entries, indent=1))

    database_dir = directory / "database"
    for db_id, schema in schemas.items():
        db_path = database_dir / db_id / f"{db_id}.sqlite"
        db_path.parent.mkdir(parents=True, exist_ok=True)
        if db_path.exists():
            db_path.unlink()
        Database.build(schema, corpus.rows[db_id], path=db_path).close()
    return directory


def load_spider_layout(
    directory: Union[str, Path],
) -> Tuple[SpiderDataset, SpiderDataset, Dict[str, Path]]:
    """Read a Spider-layout directory.

    Returns (train dataset, dev dataset, db_id → sqlite path).  Works for
    both exported synthetic corpora and a real Spider download.

    Raises:
        DatasetError: if required files are missing.
    """
    directory = Path(directory)
    train = SpiderDataset.load(directory, "train")
    dev = SpiderDataset.load(directory, "dev")

    databases: Dict[str, Path] = {}
    database_dir = directory / "database"
    if database_dir.exists():
        for child in sorted(database_dir.iterdir()):
            sqlite_path = child / f"{child.name}.sqlite"
            if sqlite_path.exists():
                databases[child.name] = sqlite_path
    missing = (set(train.schemas) | set(dev.schemas)) - set(databases)
    if database_dir.exists() and missing:
        raise DatasetError(
            f"database files missing for: {sorted(missing)}"
        )
    return train, dev, databases
