"""Spider-format datasets, the synthetic corpus generator, and
Spider-layout export/load."""

from .export import export_spider_layout, load_spider_layout
from .generator import (
    Corpus,
    CorpusConfig,
    build_corpus,
    spider_realistic,
)
from .spider import Example, SpiderDataset, validate_dataset

__all__ = [
    "export_spider_layout", "load_spider_layout", "Corpus", "CorpusConfig",
    "build_corpus", "spider_realistic", "Example", "SpiderDataset",
    "validate_dataset",
]
