"""Spider-format dataset model and JSON I/O.

Mirrors the on-disk layout of the Spider benchmark:

* ``tables.json`` — list of database schema entries;
* ``train.json`` / ``dev.json`` — lists of examples with ``db_id``,
  ``question`` and ``query`` fields;
* one SQLite database per ``db_id`` (handled by :mod:`repro.db`).

:class:`SpiderDataset` bundles examples with their schemas and caches the
derived artefacts every experiment needs (parsed ASTs, hardness buckets,
masked questions, skeletons).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import DatasetError
from ..schema.linker import SchemaLinker
from ..schema.model import (
    DatabaseSchema,
    schema_from_spider_entry,
    schema_to_spider_entry,
)
from ..sql.hardness import hardness
from ..sql.parser import parse, try_parse
from ..sql.skeleton import sql_skeleton


@dataclass
class Example:
    """One Text-to-SQL example.

    Attributes:
        db_id: database this question targets.
        question: natural-language question.
        query: gold SQL.
        example_id: stable identifier within its dataset.
        hardness: Spider hardness bucket (computed lazily if empty).
    """

    db_id: str
    question: str
    query: str
    example_id: str = ""
    hardness: str = ""

    def __post_init__(self):
        if not self.hardness:
            parsed = try_parse(self.query)
            self.hardness = hardness(parsed) if parsed is not None else "extra"

    def to_json(self) -> dict:
        return {
            "db_id": self.db_id,
            "question": self.question,
            "query": self.query,
            "example_id": self.example_id,
            "hardness": self.hardness,
        }

    @classmethod
    def from_json(cls, entry: dict) -> "Example":
        try:
            return cls(
                db_id=entry["db_id"],
                question=entry["question"],
                query=entry["query"],
                example_id=str(entry.get("example_id", "")),
                hardness=entry.get("hardness", ""),
            )
        except KeyError as exc:
            raise DatasetError(f"missing key in example entry: {exc}") from exc


class SpiderDataset:
    """Examples plus the schemas they reference.

    The dataset owns per-database :class:`SchemaLinker` instances and caches
    masked questions and SQL skeletons, which the selection strategies query
    repeatedly.
    """

    def __init__(
        self,
        examples: Sequence[Example],
        schemas: Sequence[DatabaseSchema],
        name: str = "dataset",
    ):
        self.name = name
        self.examples: List[Example] = list(examples)
        self.schemas: Dict[str, DatabaseSchema] = {s.db_id: s for s in schemas}
        missing = {e.db_id for e in self.examples} - set(self.schemas)
        if missing:
            raise DatasetError(f"examples reference unknown databases: {sorted(missing)}")
        for idx, example in enumerate(self.examples):
            if not example.example_id:
                example.example_id = f"{name}-{idx}"
        self._linkers: Dict[str, SchemaLinker] = {}
        self._masked: Dict[str, str] = {}
        self._skeletons: Dict[str, str] = {}

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    def __getitem__(self, index: int) -> Example:
        return self.examples[index]

    def schema(self, db_id: str) -> DatabaseSchema:
        """Schema for a database.

        Raises:
            DatasetError: for an unknown ``db_id``.
        """
        try:
            return self.schemas[db_id]
        except KeyError as exc:
            raise DatasetError(f"unknown db_id {db_id!r}") from exc

    def linker(self, db_id: str) -> SchemaLinker:
        """Cached :class:`SchemaLinker` for a database."""
        if db_id not in self._linkers:
            self._linkers[db_id] = SchemaLinker(self.schema(db_id))
        return self._linkers[db_id]

    def masked_question(self, example: Example) -> str:
        """Cached masked form of an example's question."""
        if example.example_id not in self._masked:
            linker = self.linker(example.db_id)
            self._masked[example.example_id] = linker.mask_question(example.question)
        return self._masked[example.example_id]

    def skeleton(self, example: Example) -> str:
        """Cached SQL skeleton of an example's gold query."""
        if example.example_id not in self._skeletons:
            self._skeletons[example.example_id] = sql_skeleton(example.query)
        return self._skeletons[example.example_id]

    def fingerprint(self) -> str:
        """Stable content digest of the dataset (examples + schemas).

        Feeds artifact-cache keys: two processes evaluating the same
        generated corpus produce the same fingerprint, while any change
        to a question, gold query or schema changes it.  Computed once
        and memoised (datasets are immutable after construction by
        convention).
        """
        if not hasattr(self, "_fingerprint"):
            from ..cache.keys import digest_texts

            def parts():
                for example in self.examples:
                    yield example.db_id
                    yield example.question
                    yield example.query
                for db_id in sorted(self.schemas):
                    yield json.dumps(
                        schema_to_spider_entry(self.schemas[db_id]),
                        sort_keys=True,
                    )

            self._fingerprint = digest_texts(parts())
        return self._fingerprint

    def db_ids(self) -> List[str]:
        return sorted(self.schemas)

    def by_hardness(self) -> Dict[str, List[Example]]:
        """Examples bucketed by hardness."""
        buckets: Dict[str, List[Example]] = {
            "easy": [], "medium": [], "hard": [], "extra": []
        }
        for example in self.examples:
            buckets.setdefault(example.hardness, []).append(example)
        return buckets

    def subset(self, indices: Iterable[int], name: Optional[str] = None) -> "SpiderDataset":
        """A new dataset holding the given example indices (schemas shared)."""
        chosen = [self.examples[i] for i in indices]
        return SpiderDataset(chosen, list(self.schemas.values()),
                             name=name or f"{self.name}-subset")

    def filter_dbs(self, db_ids: Iterable[str], name: Optional[str] = None) -> "SpiderDataset":
        """A new dataset restricted to the given databases."""
        wanted = set(db_ids)
        chosen = [e for e in self.examples if e.db_id in wanted]
        schemas = [s for s in self.schemas.values() if s.db_id in wanted]
        return SpiderDataset(chosen, schemas, name=name or f"{self.name}-filtered")

    def sample_stratified(self, n: int, seed: int = 0,
                          name: Optional[str] = None) -> "SpiderDataset":
        """A hardness-stratified sample of ``n`` examples.

        Keeps the hardness distribution of the full set (largest-remainder
        apportionment), sampling within each bucket deterministically.

        Raises:
            DatasetError: when ``n`` exceeds the dataset size.
        """
        from ..utils.rng import rng_from

        if n > len(self.examples):
            raise DatasetError(
                f"cannot sample {n} from {len(self.examples)} examples"
            )
        buckets = self.by_hardness()
        total = len(self.examples)
        quotas = {
            level: (n * len(members)) / total
            for level, members in buckets.items() if members
        }
        counts = {level: int(q) for level, q in quotas.items()}
        remainder = n - sum(counts.values())
        for level, _ in sorted(
            quotas.items(), key=lambda kv: kv[1] - int(kv[1]), reverse=True
        )[:remainder]:
            counts[level] += 1

        chosen: List[Example] = []
        for level, want in counts.items():
            members = list(buckets[level])
            rng = rng_from("stratified", self.name, level, str(seed))
            rng.shuffle(members)
            chosen.extend(members[:want])
        chosen.sort(key=lambda e: e.example_id)
        return SpiderDataset(chosen, list(self.schemas.values()),
                             name=name or f"{self.name}-sample{n}")

    # -- persistence ----------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> None:
        """Write ``tables.json`` and ``<name>.json`` in Spider format."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        tables = [schema_to_spider_entry(s) for s in self.schemas.values()]
        (directory / "tables.json").write_text(json.dumps(tables, indent=1))
        examples = [e.to_json() for e in self.examples]
        (directory / f"{self.name}.json").write_text(json.dumps(examples, indent=1))

    @classmethod
    def load(cls, directory: Union[str, Path], name: str) -> "SpiderDataset":
        """Load ``<name>.json`` plus ``tables.json`` from a directory.

        Raises:
            DatasetError: if files are missing or malformed.
        """
        directory = Path(directory)
        tables_path = directory / "tables.json"
        examples_path = directory / f"{name}.json"
        if not tables_path.exists():
            raise DatasetError(f"missing {tables_path}")
        if not examples_path.exists():
            raise DatasetError(f"missing {examples_path}")
        try:
            table_entries = json.loads(tables_path.read_text())
            example_entries = json.loads(examples_path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(f"malformed JSON in {directory}: {exc}") from exc
        schemas = [schema_from_spider_entry(entry) for entry in table_entries]
        examples = [Example.from_json(entry) for entry in example_entries]
        return cls(examples, schemas, name=name)


def validate_dataset(dataset: SpiderDataset) -> List[str]:
    """Sanity-check a dataset; returns a list of human-readable problems.

    Checks that every gold query parses and references only tables/columns
    that exist in its schema.
    """
    problems: List[str] = []
    from ..sql.ast_nodes import TableRef, iter_column_refs, iter_subqueries
    from ..sql.normalize import resolve_aliases

    for example in dataset:
        parsed = try_parse(example.query)
        if parsed is None:
            problems.append(f"{example.example_id}: gold query does not parse")
            continue
        schema = dataset.schema(example.db_id)
        known = {t.name.lower() for t in schema.tables}

        def check_query(query, label):
            for _, core in query.flatten_set_ops():
                if core.from_clause is None:
                    continue
                for source in core.from_clause.sources():
                    if isinstance(source, TableRef) and source.name.lower() not in known:
                        problems.append(
                            f"{label}: unknown table {source.name}"
                        )

        check_query(parsed, example.example_id)
        for sub in iter_subqueries(parsed):
            check_query(sub, example.example_id)

        # Column references must resolve somewhere in the schema.  After
        # alias resolution, qualified refs name base tables directly;
        # unqualified refs may come from any table in scope.
        resolved = resolve_aliases(parsed)
        for ref in iter_column_refs(resolved):
            if ref.column == "*":
                continue
            if ref.table is not None:
                if schema.has_table(ref.table):
                    if not schema.table(ref.table).has_column(ref.column):
                        problems.append(
                            f"{example.example_id}: unknown column "
                            f"{ref.table}.{ref.column}"
                        )
            elif not schema.find_column(ref.column):
                problems.append(
                    f"{example.example_id}: unknown column {ref.column}"
                )
    return problems
