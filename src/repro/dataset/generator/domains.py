"""Domain specifications for the synthetic Spider-format corpus.

Each :class:`DomainSpec` declares one database: tables, typed columns with
value sources, and foreign keys.  ``build_schema`` converts a spec into the
:class:`~repro.schema.model.DatabaseSchema` the rest of the library uses.

The catalogue below covers the kind of domains the Spider benchmark draws on
(concerts, pets, flights, universities, shops, movies, ...), split between
*train* and *dev* groups so that generated splits are cross-domain like
Spider's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ...errors import SchemaError
from ...schema.model import Column, DatabaseSchema, ForeignKey, Table


@dataclass(frozen=True)
class ColSpec:
    """Column specification.

    Attributes:
        name: column identifier.
        ctype: ``text`` / ``number`` / ``time`` / ``boolean``.
        pool: value-pool name for text columns (see
            :mod:`repro.dataset.generator.pools`).
        low / high: numeric range for number columns.
        integer: whether numeric values are integers.
        pk: this column is the table's primary key.
        unique: values must be unique across rows.
        natural: natural-language name override.
    """

    name: str
    ctype: str = "text"
    pool: Optional[str] = None
    low: float = 0
    high: float = 100
    integer: bool = True
    pk: bool = False
    unique: bool = False
    natural: str = ""


@dataclass(frozen=True)
class TableSpec:
    """Table specification: name, columns, approximate row count."""

    name: str
    cols: Tuple[ColSpec, ...]
    rows: int = 24
    natural: str = ""


@dataclass(frozen=True)
class DomainSpec:
    """One synthetic database domain.

    Attributes:
        db_id: database identifier.
        tables: table specs in creation order (parents before children).
        fks: foreign keys as ``("child.col", "parent.col")`` pairs.
        group: ``"train"`` or ``"dev"`` — which split the domain belongs to.
    """

    db_id: str
    tables: Tuple[TableSpec, ...]
    fks: Tuple[Tuple[str, str], ...] = ()
    group: str = "train"


def _id(name: str) -> ColSpec:
    return ColSpec(name=name, ctype="number", pk=True, unique=True,
                   low=1, high=10_000)


def _fk(name: str) -> ColSpec:
    return ColSpec(name=name, ctype="number", low=1, high=10_000)


def build_schema(spec: DomainSpec) -> DatabaseSchema:
    """Convert a :class:`DomainSpec` to a :class:`DatabaseSchema`.

    Raises:
        SchemaError: for dangling foreign keys or duplicate names.
    """
    tables = []
    for tspec in spec.tables:
        columns = tuple(
            Column(
                name=c.name,
                ctype=c.ctype,
                natural_name=c.natural,
                is_integer=c.integer if c.ctype == "number" else False,
            )
            for c in tspec.cols
        )
        pk = next((c.name for c in tspec.cols if c.pk), None)
        tables.append(
            Table(name=tspec.name, columns=columns, primary_key=pk,
                  natural_name=tspec.natural)
        )
    fks = []
    for child, parent in spec.fks:
        ct, cc = child.split(".")
        pt, pc = parent.split(".")
        fks.append(ForeignKey(table=ct, column=cc, ref_table=pt, ref_column=pc))
    return DatabaseSchema(db_id=spec.db_id, tables=tuple(tables),
                          foreign_keys=tuple(fks))


def colspec(spec: DomainSpec, table: str, column: str) -> ColSpec:
    """Find the :class:`ColSpec` for ``table.column``.

    Raises:
        SchemaError: if the table or column is missing from the spec.
    """
    for tspec in spec.tables:
        if tspec.name == table:
            for c in tspec.cols:
                if c.name == column:
                    return c
            raise SchemaError(f"no column {column} in spec table {table}")
    raise SchemaError(f"no table {table} in spec {spec.db_id}")


# ---------------------------------------------------------------------------
# Domain catalogue
# ---------------------------------------------------------------------------

DOMAINS: List[DomainSpec] = [
    DomainSpec(
        db_id="concert_singer",
        group="dev",
        tables=(
            TableSpec("stadium", (
                _id("stadium_id"),
                ColSpec("name", pool="stadiums", unique=True),
                ColSpec("location", pool="cities"),
                ColSpec("capacity", "number", low=500, high=80_000),
                ColSpec("average_attendance", "number", low=100, high=60_000),
            ), rows=14),
            TableSpec("singer", (
                _id("singer_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("country", pool="countries"),
                ColSpec("age", "number", low=18, high=70),
                ColSpec("genre", pool="genres"),
            ), rows=30),
            TableSpec("concert", (
                _id("concert_id"),
                ColSpec("concert_name", pool="adjectives"),
                ColSpec("year", "number", low=2010, high=2023),
                _fk("stadium_id"),
                _fk("singer_id"),
            ), rows=40),
        ),
        fks=(
            ("concert.stadium_id", "stadium.stadium_id"),
            ("concert.singer_id", "singer.singer_id"),
        ),
    ),
    DomainSpec(
        db_id="pets_1",
        group="dev",
        tables=(
            TableSpec("student", (
                _id("student_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("age", "number", low=17, high=30),
                ColSpec("major", pool="majors"),
                ColSpec("city", pool="cities"),
            ), rows=28),
            TableSpec("pet", (
                _id("pet_id"),
                ColSpec("pet_type", pool="pet_types"),
                ColSpec("pet_age", "number", low=1, high=15),
                ColSpec("weight", "number", low=1, high=60, integer=False),
                _fk("owner_id"),
            ), rows=34),
        ),
        fks=(("pet.owner_id", "student.student_id"),),
    ),
    DomainSpec(
        db_id="flight_company",
        group="dev",
        tables=(
            TableSpec("airline", (
                _id("airline_id"),
                ColSpec("name", pool="airlines", unique=True),
                ColSpec("country", pool="countries"),
                ColSpec("fleet_size", "number", low=5, high=900),
            ), rows=15),
            TableSpec("airport", (
                _id("airport_id"),
                ColSpec("code", pool="airports", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("elevation", "number", low=0, high=2500),
            ), rows=20),
            TableSpec("flight", (
                _id("flight_id"),
                ColSpec("distance", "number", low=100, high=9000),
                ColSpec("price", "number", low=49, high=1800, integer=False),
                ColSpec("departure_date", "time"),
                _fk("airline_id"),
                _fk("airport_id"),
            ), rows=46),
        ),
        fks=(
            ("flight.airline_id", "airline.airline_id"),
            ("flight.airport_id", "airport.airport_id"),
        ),
    ),
    DomainSpec(
        db_id="employee_hire",
        group="dev",
        tables=(
            TableSpec("department", (
                _id("department_id"),
                ColSpec("name", pool="departments", unique=True),
                ColSpec("budget", "number", low=100_000, high=9_000_000),
                ColSpec("city", pool="cities"),
            ), rows=12),
            TableSpec("employee", (
                _id("employee_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("title", pool="job_titles"),
                ColSpec("salary", "number", low=35_000, high=220_000),
                ColSpec("age", "number", low=21, high=65),
                ColSpec("hire_date", "time"),
                _fk("department_id"),
            ), rows=42),
        ),
        fks=(("employee.department_id", "department.department_id"),),
    ),
    DomainSpec(
        db_id="world_geo",
        group="dev",
        tables=(
            TableSpec("country", (
                _id("country_id"),
                ColSpec("name", pool="countries", unique=True),
                ColSpec("population", "number", low=1_000_000, high=1_400_000_000),
                ColSpec("area", "number", low=10_000, high=17_000_000),
                ColSpec("continent", pool="categories"),
            ), rows=24),
            TableSpec("city", (
                _id("city_id"),
                ColSpec("name", pool="cities", unique=True),
                ColSpec("population", "number", low=50_000, high=38_000_000),
                ColSpec("is_capital", "boolean"),
                _fk("country_id"),
            ), rows=40),
        ),
        fks=(("city.country_id", "country.country_id"),),
    ),
    # ------------------------------------------------------------------ train
    DomainSpec(
        db_id="orchestra_hall",
        tables=(
            TableSpec("orchestra", (
                _id("orchestra_id"),
                ColSpec("name", pool="teams", unique=True),
                ColSpec("founded_year", "number", low=1850, high=2015),
                ColSpec("city", pool="cities"),
            ), rows=14),
            TableSpec("musician", (
                _id("musician_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("instrument", pool="instruments"),
                ColSpec("age", "number", low=20, high=75),
                ColSpec("salary", "number", low=30_000, high=150_000),
                _fk("orchestra_id"),
            ), rows=40),
        ),
        fks=(("musician.orchestra_id", "orchestra.orchestra_id"),),
    ),
    DomainSpec(
        db_id="online_store",
        tables=(
            TableSpec("product", (
                _id("product_id"),
                ColSpec("name", pool="products", unique=True),
                ColSpec("category", pool="categories"),
                ColSpec("price", "number", low=5, high=2500, integer=False),
                ColSpec("stock", "number", low=0, high=500),
            ), rows=28),
            TableSpec("customer", (
                _id("customer_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("age", "number", low=18, high=80),
            ), rows=26),
            TableSpec("purchase", (
                _id("purchase_id"),
                ColSpec("quantity", "number", low=1, high=12),
                ColSpec("purchase_date", "time"),
                ColSpec("total_amount", "number", low=5, high=9000, integer=False),
                _fk("product_id"),
                _fk("customer_id"),
            ), rows=50),
        ),
        fks=(
            ("purchase.product_id", "product.product_id"),
            ("purchase.customer_id", "customer.customer_id"),
        ),
    ),
    DomainSpec(
        db_id="university_enrollment",
        tables=(
            TableSpec("department", (
                _id("department_id"),
                ColSpec("name", pool="majors", unique=True),
                ColSpec("building", pool="stadiums"),
                ColSpec("budget", "number", low=200_000, high=5_000_000),
            ), rows=12),
            TableSpec("course", (
                _id("course_id"),
                ColSpec("title", pool="courses", unique=True),
                ColSpec("credits", "number", low=1, high=6),
                _fk("department_id"),
            ), rows=18),
            TableSpec("student", (
                _id("student_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("year", "number", low=1, high=5),
                ColSpec("gpa", "number", low=2, high=4, integer=False),
                _fk("department_id"),
            ), rows=34),
            TableSpec("enrollment", (
                _id("enrollment_id"),
                ColSpec("grade", "number", low=50, high=100),
                ColSpec("semester", pool="adjectives"),
                _fk("student_id"),
                _fk("course_id"),
            ), rows=60),
        ),
        fks=(
            ("course.department_id", "department.department_id"),
            ("student.department_id", "department.department_id"),
            ("enrollment.student_id", "student.student_id"),
            ("enrollment.course_id", "course.course_id"),
        ),
    ),
    DomainSpec(
        db_id="movie_review",
        tables=(
            TableSpec("director", (
                _id("director_id"),
                ColSpec("name", pool="directors", unique=True),
                ColSpec("country", pool="countries"),
                ColSpec("age", "number", low=28, high=80),
            ), rows=10),
            TableSpec("movie", (
                _id("movie_id"),
                ColSpec("title", pool="movies", unique=True),
                ColSpec("release_year", "number", low=1980, high=2023),
                ColSpec("rating", "number", low=1, high=10, integer=False),
                ColSpec("budget", "number", low=100_000, high=300_000_000),
                _fk("director_id"),
            ), rows=20),
            TableSpec("review", (
                _id("review_id"),
                ColSpec("reviewer_name", pool="full_names"),
                ColSpec("score", "number", low=1, high=10),
                ColSpec("review_date", "time"),
                _fk("movie_id"),
            ), rows=45),
        ),
        fks=(
            ("movie.director_id", "director.director_id"),
            ("review.movie_id", "movie.movie_id"),
        ),
    ),
    DomainSpec(
        db_id="library_loan",
        tables=(
            TableSpec("author", (
                _id("author_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("country", pool="countries"),
                ColSpec("birth_year", "number", low=1900, high=1995),
            ), rows=14),
            TableSpec("book", (
                _id("book_id"),
                ColSpec("title", pool="books", unique=True),
                ColSpec("publisher", pool="publishers"),
                ColSpec("pages", "number", low=80, high=1200),
                ColSpec("publication_year", "number", low=1950, high=2023),
                _fk("author_id"),
            ), rows=26),
            TableSpec("loan", (
                _id("loan_id"),
                ColSpec("borrower_name", pool="full_names"),
                ColSpec("loan_date", "time"),
                ColSpec("days_kept", "number", low=1, high=90),
                _fk("book_id"),
            ), rows=44),
        ),
        fks=(
            ("book.author_id", "author.author_id"),
            ("loan.book_id", "book.book_id"),
        ),
    ),
    DomainSpec(
        db_id="hotel_booking",
        tables=(
            TableSpec("hotel", (
                _id("hotel_id"),
                ColSpec("name", pool="hotels", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("stars", "number", low=1, high=5),
                ColSpec("room_count", "number", low=20, high=800),
            ), rows=12),
            TableSpec("guest", (
                _id("guest_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("country", pool="countries"),
                ColSpec("age", "number", low=18, high=85),
            ), rows=28),
            TableSpec("booking", (
                _id("booking_id"),
                ColSpec("check_in", "time"),
                ColSpec("nights", "number", low=1, high=21),
                ColSpec("price", "number", low=60, high=4200, integer=False),
                _fk("hotel_id"),
                _fk("guest_id"),
            ), rows=48),
        ),
        fks=(
            ("booking.hotel_id", "hotel.hotel_id"),
            ("booking.guest_id", "guest.guest_id"),
        ),
    ),
    DomainSpec(
        db_id="sports_league",
        tables=(
            TableSpec("team", (
                _id("team_id"),
                ColSpec("name", pool="teams", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("founded_year", "number", low=1900, high=2015),
                ColSpec("championships", "number", low=0, high=25),
            ), rows=15),
            TableSpec("player", (
                _id("player_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("position", pool="job_titles"),
                ColSpec("age", "number", low=18, high=40),
                ColSpec("goals", "number", low=0, high=60),
                ColSpec("salary", "number", low=50_000, high=5_000_000),
                _fk("team_id"),
            ), rows=45),
        ),
        fks=(("player.team_id", "team.team_id"),),
    ),
    DomainSpec(
        db_id="restaurant_orders",
        tables=(
            TableSpec("restaurant", (
                _id("restaurant_id"),
                ColSpec("name", pool="hotels", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("cuisine", pool="categories"),
                ColSpec("rating", "number", low=1, high=5, integer=False),
            ), rows=14),
            TableSpec("dish", (
                _id("dish_id"),
                ColSpec("name", pool="products", unique=True),
                ColSpec("price", "number", low=4, high=90, integer=False),
                ColSpec("calories", "number", low=100, high=1500),
                _fk("restaurant_id"),
            ), rows=30),
        ),
        fks=(("dish.restaurant_id", "restaurant.restaurant_id"),),
    ),
    DomainSpec(
        db_id="bank_accounts",
        tables=(
            TableSpec("branch", (
                _id("branch_id"),
                ColSpec("name", pool="stadiums", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("assets", "number", low=1_000_000, high=500_000_000),
            ), rows=10),
            TableSpec("customer", (
                _id("customer_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("age", "number", low=18, high=90),
                ColSpec("credit_score", "number", low=300, high=850),
                _fk("branch_id"),
            ), rows=32),
            TableSpec("account", (
                _id("account_id"),
                ColSpec("balance", "number", low=0, high=2_000_000, integer=False),
                ColSpec("account_type", pool="categories"),
                ColSpec("open_date", "time"),
                _fk("customer_id"),
            ), rows=44),
        ),
        fks=(
            ("customer.branch_id", "branch.branch_id"),
            ("account.customer_id", "customer.customer_id"),
        ),
    ),
    DomainSpec(
        db_id="car_dealership",
        tables=(
            TableSpec("manufacturer", (
                _id("manufacturer_id"),
                ColSpec("name", pool="publishers", unique=True),
                ColSpec("country", pool="countries"),
                ColSpec("founded_year", "number", low=1900, high=2010),
            ), rows=10),
            TableSpec("car", (
                _id("car_id"),
                ColSpec("model", pool="movies", unique=True),
                ColSpec("color", pool="colors"),
                ColSpec("price", "number", low=12_000, high=250_000),
                ColSpec("horsepower", "number", low=70, high=900),
                ColSpec("year", "number", low=2005, high=2024),
                _fk("manufacturer_id"),
            ), rows=34),
        ),
        fks=(("car.manufacturer_id", "manufacturer.manufacturer_id"),),
    ),
    DomainSpec(
        db_id="hospital_visits",
        tables=(
            TableSpec("doctor", (
                _id("doctor_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("specialty", pool="departments"),
                ColSpec("years_experience", "number", low=1, high=40),
            ), rows=16),
            TableSpec("patient", (
                _id("patient_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("age", "number", low=1, high=95),
                ColSpec("city", pool="cities"),
            ), rows=30),
            TableSpec("visit", (
                _id("visit_id"),
                ColSpec("visit_date", "time"),
                ColSpec("cost", "number", low=50, high=12_000, integer=False),
                ColSpec("duration_minutes", "number", low=5, high=180),
                _fk("doctor_id"),
                _fk("patient_id"),
            ), rows=52),
        ),
        fks=(
            ("visit.doctor_id", "doctor.doctor_id"),
            ("visit.patient_id", "patient.patient_id"),
        ),
    ),
    DomainSpec(
        db_id="music_festival",
        tables=(
            TableSpec("band", (
                _id("band_id"),
                ColSpec("name", pool="teams", unique=True),
                ColSpec("genre", pool="genres"),
                ColSpec("formed_year", "number", low=1970, high=2020),
                ColSpec("members", "number", low=2, high=9),
            ), rows=16),
            TableSpec("performance", (
                _id("performance_id"),
                ColSpec("festival_name", pool="stadiums"),
                ColSpec("year", "number", low=2012, high=2024),
                ColSpec("attendance", "number", low=200, high=90_000),
                _fk("band_id"),
            ), rows=40),
        ),
        fks=(("performance.band_id", "band.band_id"),),
    ),
    DomainSpec(
        db_id="shipping_logistics",
        tables=(
            TableSpec("warehouse", (
                _id("warehouse_id"),
                ColSpec("name", pool="stadiums", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("capacity", "number", low=1000, high=200_000),
            ), rows=12),
            TableSpec("shipment", (
                _id("shipment_id"),
                ColSpec("weight", "number", low=1, high=20_000, integer=False),
                ColSpec("destination", pool="cities"),
                ColSpec("ship_date", "time"),
                ColSpec("is_express", "boolean"),
                _fk("warehouse_id"),
            ), rows=46),
        ),
        fks=(("shipment.warehouse_id", "warehouse.warehouse_id"),),
    ),
    DomainSpec(
        db_id="tv_network",
        tables=(
            TableSpec("network", (
                _id("network_id"),
                ColSpec("name", pool="publishers", unique=True),
                ColSpec("country", pool="countries"),
                ColSpec("launch_year", "number", low=1950, high=2015),
            ), rows=9),
            TableSpec("show", (
                _id("show_id"),
                ColSpec("title", pool="books", unique=True),
                ColSpec("seasons", "number", low=1, high=25),
                ColSpec("episodes", "number", low=6, high=500),
                ColSpec("rating", "number", low=1, high=10, integer=False),
                _fk("network_id"),
            ), rows=28),
        ),
        fks=(("show.network_id", "network.network_id"),),
    ),
    DomainSpec(
        db_id="gym_membership",
        tables=(
            TableSpec("gym", (
                _id("gym_id"),
                ColSpec("name", pool="hotels", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("monthly_fee", "number", low=15, high=200, integer=False),
            ), rows=10),
            TableSpec("member", (
                _id("member_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("age", "number", low=16, high=80),
                ColSpec("join_date", "time"),
                ColSpec("sessions_attended", "number", low=0, high=400),
                _fk("gym_id"),
            ), rows=38),
        ),
        fks=(("member.gym_id", "gym.gym_id"),),
    ),
    DomainSpec(
        db_id="museum_visit",
        group="dev",
        tables=(
            TableSpec("museum", (
                _id("museum_id"),
                ColSpec("name", pool="hotels", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("founded_year", "number", low=1800, high=2010),
                ColSpec("annual_visitors", "number", low=10_000, high=5_000_000),
            ), rows=12),
            TableSpec("exhibit", (
                _id("exhibit_id"),
                ColSpec("title", pool="books", unique=True),
                ColSpec("theme", pool="categories"),
                ColSpec("artifact_count", "number", low=5, high=900),
                _fk("museum_id"),
            ), rows=30),
            TableSpec("visit", (
                _id("visit_id"),
                ColSpec("visitor_name", pool="full_names"),
                ColSpec("visit_date", "time"),
                ColSpec("ticket_price", "number", low=0, high=60, integer=False),
                _fk("exhibit_id"),
            ), rows=48),
        ),
        fks=(
            ("exhibit.museum_id", "museum.museum_id"),
            ("visit.exhibit_id", "exhibit.exhibit_id"),
        ),
    ),
    DomainSpec(
        db_id="music_streaming",
        tables=(
            TableSpec("artist", (
                _id("artist_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("genre", pool="genres"),
                ColSpec("followers", "number", low=1000, high=80_000_000),
            ), rows=16),
            TableSpec("album", (
                _id("album_id"),
                ColSpec("title", pool="movies", unique=True),
                ColSpec("release_year", "number", low=1990, high=2024),
                _fk("artist_id"),
            ), rows=28),
            TableSpec("track", (
                _id("track_id"),
                ColSpec("title", pool="books"),
                ColSpec("duration_seconds", "number", low=90, high=900),
                ColSpec("play_count", "number", low=0, high=90_000_000),
                _fk("album_id"),
            ), rows=56),
        ),
        fks=(
            ("album.artist_id", "artist.artist_id"),
            ("track.album_id", "album.album_id"),
        ),
    ),
    DomainSpec(
        db_id="real_estate",
        tables=(
            TableSpec("agency", (
                _id("agency_id"),
                ColSpec("name", pool="publishers", unique=True),
                ColSpec("city", pool="cities"),
                ColSpec("founded_year", "number", low=1950, high=2020),
            ), rows=10),
            TableSpec("agent", (
                _id("agent_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("commission_rate", "number", low=1, high=6, integer=False),
                ColSpec("sales_count", "number", low=0, high=120),
                _fk("agency_id"),
            ), rows=26),
            TableSpec("property", (
                _id("property_id"),
                ColSpec("address", pool="stadiums"),
                ColSpec("price", "number", low=80_000, high=4_000_000),
                ColSpec("bedrooms", "number", low=1, high=8),
                ColSpec("listing_date", "time"),
                _fk("agent_id"),
            ), rows=44),
        ),
        fks=(
            ("agent.agency_id", "agency.agency_id"),
            ("property.agent_id", "agent.agent_id"),
        ),
    ),
    DomainSpec(
        db_id="energy_grid",
        tables=(
            TableSpec("region", (
                _id("region_id"),
                ColSpec("name", pool="countries", unique=True),
                ColSpec("population", "number", low=100_000, high=40_000_000),
            ), rows=10),
            TableSpec("plant", (
                _id("plant_id"),
                ColSpec("name", pool="stadiums", unique=True),
                ColSpec("fuel_type", pool="categories"),
                ColSpec("capacity_mw", "number", low=10, high=4000),
                ColSpec("commission_year", "number", low=1960, high=2023),
                _fk("region_id"),
            ), rows=32),
        ),
        fks=(("plant.region_id", "region.region_id"),),
    ),
    DomainSpec(
        db_id="conference_papers",
        tables=(
            TableSpec("conference", (
                _id("conference_id"),
                ColSpec("name", pool="universities", unique=True),
                ColSpec("field", pool="majors"),
                ColSpec("acceptance_rate", "number", low=5, high=50, integer=False),
            ), rows=12),
            TableSpec("author", (
                _id("author_id"),
                ColSpec("name", pool="full_names", unique=True),
                ColSpec("affiliation", pool="universities"),
                ColSpec("h_index", "number", low=1, high=120),
            ), rows=30),
            TableSpec("paper", (
                _id("paper_id"),
                ColSpec("title", pool="books"),
                ColSpec("year", "number", low=2000, high=2024),
                ColSpec("citations", "number", low=0, high=9000),
                _fk("conference_id"),
                _fk("author_id"),
            ), rows=52),
        ),
        fks=(
            ("paper.conference_id", "conference.conference_id"),
            ("paper.author_id", "author.author_id"),
        ),
    ),
    DomainSpec(
        db_id="farm_production",
        tables=(
            TableSpec("farm", (
                _id("farm_id"),
                ColSpec("name", pool="stadiums", unique=True),
                ColSpec("region", pool="countries"),
                ColSpec("hectares", "number", low=5, high=5000),
            ), rows=12),
            TableSpec("crop", (
                _id("crop_id"),
                ColSpec("name", pool="products", unique=True),
                ColSpec("yield_tons", "number", low=1, high=900, integer=False),
                ColSpec("harvest_year", "number", low=2015, high=2024),
                _fk("farm_id"),
            ), rows=34),
        ),
        fks=(("crop.farm_id", "farm.farm_id"),),
    ),
]


def domain_by_id(db_id: str) -> DomainSpec:
    """Find a domain spec by ``db_id``.

    Raises:
        SchemaError: if no such domain exists.
    """
    for spec in DOMAINS:
        if spec.db_id == db_id:
            return spec
    raise SchemaError(f"unknown domain {db_id!r}")


def domains_for_group(group: str) -> List[DomainSpec]:
    """All domains assigned to a split group (``train`` / ``dev``)."""
    return [spec for spec in DOMAINS if spec.group == group]
