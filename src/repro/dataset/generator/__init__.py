"""Synthetic Spider-format corpus generation."""

from .corpus import (
    Corpus,
    CorpusConfig,
    REALISTIC_SYNONYMS,
    build_corpus,
    spider_realistic,
)
from .domains import DOMAINS, ColSpec, DomainSpec, TableSpec, build_schema
from .populate import populate
from .questions import GeneratedExample, TEMPLATES, generate_examples

__all__ = [
    "Corpus", "CorpusConfig", "REALISTIC_SYNONYMS", "build_corpus",
    "spider_realistic", "DOMAINS", "ColSpec", "DomainSpec", "TableSpec",
    "build_schema", "populate", "GeneratedExample", "TEMPLATES",
    "generate_examples",
]
