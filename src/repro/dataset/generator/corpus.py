"""Corpus assembly: build the full synthetic Spider-format benchmark.

A :class:`Corpus` holds a cross-domain ``train`` split (in-context example
candidates and SFT data), a ``dev`` split (evaluation questions over unseen
databases), per-database rows, and a lazily built
:class:`~repro.db.sqlite_backend.DatabasePool` for execution-accuracy
evaluation.

:func:`spider_realistic` derives the robustness variant of a dataset by
paraphrasing explicit column mentions out of the questions, mirroring the
Spider-Realistic benchmark used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...db.sqlite_backend import DatabasePool
from ...errors import DatasetError
from ..spider import Example, SpiderDataset
from .domains import DOMAINS, build_schema
from .populate import populate
from .questions import generate_examples


@dataclass
class CorpusConfig:
    """Knobs for corpus generation.

    Attributes:
        seed: master seed; every derived artefact is a pure function of it.
        train_per_db: question/SQL pairs generated per training database.
        dev_per_db: pairs per evaluation database.
        domains: restrict to these db_ids (default: the full catalogue).
    """

    seed: int = 0
    train_per_db: int = 30
    dev_per_db: int = 20
    domains: Optional[Sequence[str]] = None


class Corpus:
    """The generated benchmark: splits, rows, and databases."""

    def __init__(
        self,
        train: SpiderDataset,
        dev: SpiderDataset,
        rows: Dict[str, Dict[str, List[dict]]],
        config: CorpusConfig,
    ):
        self.train = train
        self.dev = dev
        self.rows = rows
        self.config = config
        #: backend name → materialised pool over the same recipes.
        self._pools: Dict[str, DatabasePool] = {}

    def pool(self, backend=None) -> DatabasePool:
        """Databases for every schema in the corpus (built on first use).

        Args:
            backend: optional execution-backend name or instance; each
                backend gets its own pool over the same schema/row
                recipes (default: the SQLite reference backend).
        """
        from ...db.backends import resolve_backend

        resolved = resolve_backend(backend)
        cached = self._pools.get(resolved.name)
        if cached is None:
            pool = DatabasePool(backend=resolved)
            for dataset in (self.train, self.dev):
                for schema in dataset.schemas.values():
                    if schema.db_id not in pool:
                        pool.add(schema, self.rows[schema.db_id])
            self._pools[resolved.name] = pool
            cached = pool
        return cached

    def close(self) -> None:
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def __enter__(self) -> "Corpus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_corpus(config: Optional[CorpusConfig] = None) -> Corpus:
    """Generate the full synthetic benchmark from a config.

    Train and dev use disjoint domain groups, making the benchmark
    cross-domain exactly like Spider: no evaluation database is ever seen in
    the example pool.

    Raises:
        DatasetError: if the domain restriction leaves a split empty.
    """
    config = config or CorpusConfig()
    wanted = set(config.domains) if config.domains is not None else None

    train_examples: List[Example] = []
    dev_examples: List[Example] = []
    train_schemas = []
    dev_schemas = []
    rows: Dict[str, Dict[str, List[dict]]] = {}

    for spec in DOMAINS:
        if wanted is not None and spec.db_id not in wanted:
            continue
        schema = build_schema(spec)
        data = populate(spec, seed=config.seed)
        rows[spec.db_id] = data
        count = config.dev_per_db if spec.group == "dev" else config.train_per_db
        generated = generate_examples(schema, data, count, seed=config.seed)
        examples = [
            Example(
                db_id=spec.db_id,
                question=g.question,
                query=g.sql,
                example_id=f"{spec.db_id}-{i}",
            )
            for i, g in enumerate(generated)
        ]
        if spec.group == "dev":
            dev_schemas.append(schema)
            dev_examples.extend(examples)
        else:
            train_schemas.append(schema)
            train_examples.extend(examples)

    if not train_examples or not dev_examples:
        raise DatasetError("domain restriction produced an empty split")

    train = SpiderDataset(train_examples, train_schemas, name="train")
    dev = SpiderDataset(dev_examples, dev_schemas, name="dev")
    return Corpus(train=train, dev=dev, rows=rows, config=config)


#: Column-word paraphrases used by the Spider-Realistic transform.  The
#: replacements deliberately avoid schema vocabulary so that explicit
#: column mentions disappear from the question (the gold SQL is unchanged).
REALISTIC_SYNONYMS: Dict[str, str] = {
    "name": "label",
    "title": "heading",
    "age": "years lived",
    "salary": "pay",
    "price": "cost",
    "capacity": "size limit",
    "population": "resident count",
    "budget": "funding",
    "rating": "score received",
    "weight": "heaviness",
    "distance": "span",
    "stars": "quality level",
    "balance": "funds held",
    "goals": "times scored",
    "pages": "length in sheets",
    "location": "place",
    "country": "nation",
    "city": "town",
    "year": "point in time",
    "date": "day",
    "grade": "mark",
    "credits": "units",
    "gpa": "academic standing",
    "stock": "units available",
    "quantity": "amount bought",
    "nights": "evenings stayed",
    "cost": "expense",
    "attendance": "crowd size",
    "members": "headcount",
    "seasons": "runs aired",
    "episodes": "installments",
    "elevation": "height above sea",
    "calories": "energy content",
    "hectares": "land extent",
}


def spider_realistic(dataset: SpiderDataset) -> SpiderDataset:
    """Derive the Spider-Realistic variant: remove explicit column mentions.

    Every word of a question that names a column (per the synonym map) is
    replaced by a paraphrase outside the schema vocabulary, so models must
    infer the column from context — the harder setting the paper evaluates
    for robustness.  Gold SQL is unchanged.
    """
    transformed = []
    for example in dataset:
        words = example.question.split()
        rewritten = []
        for word in words:
            stripped = word.strip('.,?!"').lower()
            replacement = REALISTIC_SYNONYMS.get(stripped)
            if replacement is not None:
                trailing = word[len(word.rstrip('.,?!"')):]
                rewritten.append(replacement + trailing)
            else:
                rewritten.append(word)
        transformed.append(
            Example(
                db_id=example.db_id,
                question=" ".join(rewritten),
                query=example.query,
                example_id=f"{example.example_id}-realistic",
                hardness=example.hardness,
            )
        )
    return SpiderDataset(
        transformed, list(dataset.schemas.values()),
        name=f"{dataset.name}-realistic",
    )
