"""Deterministic population of synthetic databases.

Given a :class:`~repro.dataset.generator.domains.DomainSpec` and a seed,
produce concrete rows for every table, respecting primary keys (sequential),
foreign keys (sampled from parent keys so joins always hit) and uniqueness
constraints.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ...errors import DatasetError
from ...utils.rng import rng_from
from .domains import ColSpec, DomainSpec
from .pools import pool

Row = Dict[str, object]


def populate(spec: DomainSpec, seed: int = 0) -> Dict[str, List[Row]]:
    """Generate rows for every table of a domain.

    Tables are filled in declaration order, so parents are populated before
    the children whose foreign keys reference them.

    Raises:
        DatasetError: if a foreign key references a not-yet-populated table.
    """
    rng = rng_from("populate", spec.db_id, str(seed))
    data: Dict[str, List[Row]] = {}
    fk_targets = {child: parent for child, parent in spec.fks}

    for tspec in spec.tables:
        rows: List[Row] = []
        unique_seen: Dict[str, set] = {c.name: set() for c in tspec.cols if c.unique}
        for index in range(tspec.rows):
            row: Row = {}
            for col in tspec.cols:
                qualified = f"{tspec.name}.{col.name}"
                parent = fk_targets.get(qualified)
                if col.pk:
                    row[col.name] = index + 1
                elif parent is not None:
                    row[col.name] = _sample_parent_key(data, parent, rng)
                else:
                    row[col.name] = _generate_value(col, index, rng, unique_seen)
            rows.append(row)
        data[tspec.name] = rows
    return data


def _sample_parent_key(
    data: Dict[str, List[Row]], parent: str, rng: random.Random
) -> object:
    parent_table, parent_column = parent.split(".")
    if parent_table not in data:
        raise DatasetError(
            f"foreign key references {parent_table}, which is declared after "
            "its child; order tables parents-first"
        )
    parent_rows = data[parent_table]
    if not parent_rows:
        raise DatasetError(f"parent table {parent_table} is empty")
    # Skew towards earlier parents so per-parent counts vary (some parents
    # get many children, some get none) — needed by GROUP BY / NOT IN
    # questions to have interesting answers.
    index = min(
        rng.randrange(len(parent_rows)),
        rng.randrange(len(parent_rows)) + 1,
    )
    index = min(index, len(parent_rows) - 1)
    return parent_rows[index][parent_column]


def _generate_value(
    col: ColSpec,
    index: int,
    rng: random.Random,
    unique_seen: Dict[str, set],
) -> object:
    if col.ctype == "text":
        value = _text_value(col, index, rng)
        if col.unique:
            seen = unique_seen[col.name]
            base = value
            bump = 2
            while value in seen:
                value = f"{base} {_roman(bump)}"
                bump += 1
            seen.add(value)
        return value
    if col.ctype == "number":
        if col.unique:
            # Unique numbers: stride the range deterministically.
            span = max(int(col.high - col.low), 1)
            return int(col.low) + (index * 17) % span
        if col.integer:
            return rng.randint(int(col.low), int(col.high))
        return round(rng.uniform(col.low, col.high), 2)
    if col.ctype == "time":
        year = rng.randint(1995, 2023)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"
    if col.ctype == "boolean":
        return rng.randint(0, 1)
    raise DatasetError(f"cannot generate values for column type {col.ctype!r}")


def _text_value(col: ColSpec, index: int, rng: random.Random) -> str:
    if col.pool:
        values = pool(col.pool)
        if col.unique and index < len(values):
            # Walk the pool in a seeded order to keep values distinct.
            offset = rng.randrange(len(values)) if index == 0 else 0
            return values[(index + offset) % len(values)]
        return values[rng.randrange(len(values))]
    return f"{col.name}_{index}"


def _roman(n: int) -> str:
    """Tiny roman-numeral suffix for de-duplicating names (2 → II)."""
    numerals = ["", "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"]
    if n < len(numerals):
        return numerals[n]
    return str(n)
