"""Template-based question/SQL pair generation.

Each template instantiates one (natural-language question, gold SQL AST)
pair over a populated domain: it samples tables, columns and *real cell
values* (so gold queries return meaningful results), phrases a question
using the schema's natural-language names, and builds the gold query as an
AST (unparsed to text at the end).

Templates span the full Spider hardness spectrum — simple projections up to
nested NOT IN, set operations and multi-hop joins — so the generated corpus
exercises every code path of the SQL toolkit, evaluator and the prompt
pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...schema.model import Column, DatabaseSchema, Table
from ...sql.ast_nodes import (
    AndCondition,
    BetweenCondition,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    InCondition,
    Join,
    LikeCondition,
    Literal,
    OrCondition,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    TableRef,
)
from ...sql.unparse import unparse
from ...utils.rng import rng_from

Rows = Dict[str, List[dict]]


@dataclass
class GeneratedExample:
    """One generated (question, SQL) pair, before packaging."""

    question: str
    query: Query

    @property
    def sql(self) -> str:
        return unparse(self.query)


class TemplateContext:
    """Sampling helpers shared by all templates."""

    def __init__(self, schema: DatabaseSchema, data: Rows, rng: random.Random):
        self.schema = schema
        self.data = data
        self.rng = rng

    # -- schema sampling ------------------------------------------------------

    def pick_table(self) -> Table:
        return self.rng.choice(list(self.schema.tables))

    def text_columns(self, table: Table) -> List[Column]:
        return [
            c for c in table.columns
            if c.ctype == "text" and not _is_id(c.name)
        ]

    def numeric_columns(self, table: Table) -> List[Column]:
        return [
            c for c in table.columns
            if c.ctype == "number" and not _is_id(c.name)
        ]

    def plain_columns(self, table: Table) -> List[Column]:
        """Columns suitable for projection (no ids)."""
        return [c for c in table.columns if not _is_id(c.name)]

    def name_column(self, table: Table) -> Optional[Column]:
        """The most human-readable text column (name/title first)."""
        texts = self.text_columns(table)
        for preferred in ("name", "title", "code", "model"):
            for col in texts:
                if preferred in col.name.lower():
                    return col
        return texts[0] if texts else None

    def fk_pairs(self) -> List[Tuple[Table, str, Table, str]]:
        """(child table, child col, parent table, parent col) for every FK."""
        pairs = []
        for fk in self.schema.foreign_keys:
            pairs.append(
                (
                    self.schema.table(fk.table),
                    fk.column,
                    self.schema.table(fk.ref_table),
                    fk.ref_column,
                )
            )
        return pairs

    # -- value sampling ----------------------------------------------------------

    def values(self, table: Table, column: Column) -> List[object]:
        rows = self.data.get(table.name, [])
        return [row[column.name] for row in rows if row.get(column.name) is not None]

    def sample_value(self, table: Table, column: Column) -> Optional[object]:
        values = self.values(table, column)
        if not values:
            return None
        return self.rng.choice(values)

    def threshold(self, table: Table, column: Column) -> Optional[object]:
        """A numeric threshold near the median, so filters select some rows."""
        values = sorted(self.values(table, column))
        if len(values) < 4:
            return None
        lo, hi = len(values) // 4, 3 * len(values) // 4
        return values[self.rng.randrange(lo, hi + 1)]

    def word_from(self, table: Table, column: Column) -> Optional[str]:
        """A single word occurring in some value of a text column."""
        values = [str(v) for v in self.values(table, column)]
        words = [w for v in values for w in v.split() if len(w) >= 4 and w.isalpha()]
        if not words:
            return None
        return self.rng.choice(words)


def _phrase(ctx: TemplateContext, options) -> str:
    """Pick one phrasing variant.

    Templates offer several phrasings, some deliberately colliding across
    templates once masked ("Which <m> has the most <m>?" can be a GROUP BY
    argmax or a join-count argmax) — real questions are ambiguous like
    this, which is what gives skeleton-aware selection (DAIL_S) its edge
    over pure question similarity.
    """
    return ctx.rng.choice(options)


def _is_id(name: str) -> bool:
    return name.lower().endswith("id") or name.lower() == "id"


def _plural(name: str) -> str:
    if name.endswith("s"):
        return name
    if name.endswith("y"):
        return name[:-1] + "ies"
    return name + "s"


def _table_phrase(table: Table, plural: bool = True) -> str:
    words = table.natural_name or table.name.replace("_", " ")
    return _plural(words) if plural else words


def _col_phrase(column: Column) -> str:
    return column.natural_name or column.name.replace("_", " ")


def _lit(value: object) -> Literal:
    if isinstance(value, bool):
        return Literal(str(int(value)), "number")
    if isinstance(value, (int, float)):
        text = repr(value)
        return Literal(text, "number")
    return Literal(str(value), "string")


def _col(table: Table, column: Column, qualify: bool = False) -> ColumnRef:
    return ColumnRef(column=column.name, table=table.name if qualify else None)


def _select(table: Table, items: Sequence[SelectItem], **kwargs) -> Query:
    return Query(
        core=SelectCore(
            items=tuple(items),
            from_clause=FromClause(source=TableRef(name=table.name)),
            **kwargs,
        )
    )


def _join_query(
    child: Table,
    child_col: str,
    parent: Table,
    parent_col: str,
    items: Sequence[SelectItem],
    **kwargs,
) -> Query:
    on = Comparison(
        op="=",
        left=ColumnRef(column=child_col, table=child.name),
        right=ColumnRef(column=parent_col, table=parent.name),
    )
    return Query(
        core=SelectCore(
            items=tuple(items),
            from_clause=FromClause(
                source=TableRef(name=child.name),
                joins=(Join(source=TableRef(name=parent.name), condition=on),),
            ),
            **kwargs,
        )
    )


TemplateFn = Callable[[TemplateContext], Optional[GeneratedExample]]


# ---------------------------------------------------------------------------
# Easy templates
# ---------------------------------------------------------------------------


def t_list_column(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    cols = ctx.plain_columns(table)
    if not cols:
        return None
    col = ctx.rng.choice(cols)
    question = _phrase(ctx, [
        f"List the {_col_phrase(col)} of all {_table_phrase(table)}.",
        f"Show the {_col_phrase(col)} for every "
        f"{_table_phrase(table, plural=False)}.",
        f"What are the {_col_phrase(col)} values of {_table_phrase(table)}?",
    ])
    query = _select(table, [SelectItem(_col(table, col))])
    return GeneratedExample(question, query)


def t_two_columns(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    cols = ctx.plain_columns(table)
    if len(cols) < 2:
        return None
    a, b = ctx.rng.sample(cols, 2)
    question = (
        f"What are the {_col_phrase(a)} and {_col_phrase(b)} of each "
        f"{_table_phrase(table, plural=False)}?"
    )
    query = _select(table, [SelectItem(_col(table, a)), SelectItem(_col(table, b))])
    return GeneratedExample(question, query)


def t_count_all(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    question = _phrase(ctx, [
        f"How many {_table_phrase(table)} are there?",
        f"Count the number of {_table_phrase(table)}.",
        f"What is the total number of {_table_phrase(table)}?",
    ])
    query = _select(table, [SelectItem(FuncCall("COUNT", ColumnRef("*")))])
    return GeneratedExample(question, query)


def t_distinct(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    cols = ctx.text_columns(table)
    if not cols:
        return None
    col = ctx.rng.choice(cols)
    question = f"List the distinct {_col_phrase(col)} of {_table_phrase(table)}."
    query = _select(table, [SelectItem(_col(table, col))], distinct=True)
    return GeneratedExample(question, query)


def t_count_distinct(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    cols = ctx.text_columns(table)
    if not cols:
        return None
    col = ctx.rng.choice(cols)
    question = (
        f"How many different {_col_phrase(col)} values appear among "
        f"{_table_phrase(table)}?"
    )
    query = _select(
        table,
        [SelectItem(FuncCall("COUNT", _col(table, col), distinct=True))],
    )
    return GeneratedExample(question, query)


def t_simple_agg(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    cols = ctx.numeric_columns(table)
    if not cols:
        return None
    col = ctx.rng.choice(cols)
    agg, phrase = ctx.rng.choice(
        [("AVG", "average"), ("MIN", "minimum"), ("MAX", "maximum"),
         ("SUM", "total")]
    )
    question = (
        f"What is the {phrase} {_col_phrase(col)} of all {_table_phrase(table)}?"
    )
    query = _select(table, [SelectItem(FuncCall(agg, _col(table, col)))])
    return GeneratedExample(question, query)


# ---------------------------------------------------------------------------
# Medium templates
# ---------------------------------------------------------------------------


def t_filter_numeric(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    out_cols = ctx.plain_columns(table)
    if not num_cols or not out_cols:
        return None
    num = ctx.rng.choice(num_cols)
    out = ctx.rng.choice(out_cols)
    value = ctx.threshold(table, num)
    if value is None:
        return None
    op, phrase = ctx.rng.choice([(">", "greater than"), ("<", "less than")])
    question = _phrase(ctx, [
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(num)} is {phrase} {value}.",
        f"Which {_table_phrase(table)} have a {_col_phrase(num)} "
        f"{phrase} {value}? Give their {_col_phrase(out)}.",
        f"Show the {_col_phrase(out)} of {_table_phrase(table)} with "
        f"{_col_phrase(num)} {phrase} {value}.",
    ])
    where = Comparison(op=op, left=_col(table, num), right=_lit(value))
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_filter_text(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    text_cols = ctx.text_columns(table)
    out_cols = ctx.plain_columns(table)
    if not text_cols or not out_cols:
        return None
    tcol = ctx.rng.choice(text_cols)
    out = ctx.rng.choice([c for c in out_cols if c.name != tcol.name] or out_cols)
    value = ctx.sample_value(table, tcol)
    if value is None:
        return None
    question = (
        f"Show the {_col_phrase(out)} of the {_table_phrase(table)} whose "
        f"{_col_phrase(tcol)} is \"{value}\"."
    )
    where = Comparison(op="=", left=_col(table, tcol), right=_lit(value))
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_order_limit(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    out_cols = ctx.plain_columns(table)
    if not num_cols or not out_cols:
        return None
    num = ctx.rng.choice(num_cols)
    out = ctx.rng.choice(out_cols)
    k = ctx.rng.randint(1, 5)
    direction, phrase = ctx.rng.choice(
        [("DESC", "highest"), ("ASC", "lowest")]
    )
    noun = _table_phrase(table) if k > 1 else _table_phrase(table, plural=False)
    question = _phrase(ctx, [
        f"List the {_col_phrase(out)} of the {k} {noun} with the "
        f"{phrase} {_col_phrase(num)}.",
        f"Which {k} {noun} have the {phrase} {_col_phrase(num)}? "
        f"Give their {_col_phrase(out)}.",
    ])
    query = _select(
        table,
        [SelectItem(_col(table, out))],
        order_by=(OrderItem(_col(table, num), direction=direction),),
        limit=k,
    )
    return GeneratedExample(question, query)


def t_order_all(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    out_cols = ctx.plain_columns(table)
    if not num_cols or not out_cols:
        return None
    num = ctx.rng.choice(num_cols)
    out = ctx.rng.choice(out_cols)
    direction, phrase = ctx.rng.choice(
        [("DESC", "descending"), ("ASC", "ascending")]
    )
    question = (
        f"List the {_col_phrase(out)} of all {_table_phrase(table)} in "
        f"{phrase} order of {_col_phrase(num)}."
    )
    query = _select(
        table,
        [SelectItem(_col(table, out))],
        order_by=(OrderItem(_col(table, num), direction=direction),),
    )
    return GeneratedExample(question, query)


def t_group_count(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    text_cols = ctx.text_columns(table)
    if not text_cols:
        return None
    col = ctx.rng.choice(text_cols)
    question = (
        f"How many {_table_phrase(table)} are there for each "
        f"{_col_phrase(col)}?"
    )
    query = _select(
        table,
        [SelectItem(_col(table, col)), SelectItem(FuncCall("COUNT", ColumnRef("*")))],
        group_by=(_col(table, col),),
    )
    return GeneratedExample(question, query)


def t_agg_filtered(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    text_cols = ctx.text_columns(table)
    if not num_cols or not text_cols:
        return None
    num = ctx.rng.choice(num_cols)
    tcol = ctx.rng.choice(text_cols)
    value = ctx.sample_value(table, tcol)
    if value is None:
        return None
    agg, phrase = ctx.rng.choice([("AVG", "average"), ("MAX", "maximum"),
                                  ("SUM", "total")])
    question = (
        f"What is the {phrase} {_col_phrase(num)} of {_table_phrase(table)} "
        f"whose {_col_phrase(tcol)} is \"{value}\"?"
    )
    where = Comparison(op="=", left=_col(table, tcol), right=_lit(value))
    query = _select(table, [SelectItem(FuncCall(agg, _col(table, num)))], where=where)
    return GeneratedExample(question, query)


def t_like(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    text_cols = ctx.text_columns(table)
    out_cols = ctx.plain_columns(table)
    if not text_cols or not out_cols:
        return None
    tcol = ctx.rng.choice(text_cols)
    out = ctx.rng.choice(out_cols)
    word = ctx.word_from(table, tcol)
    if word is None:
        return None
    question = (
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(tcol)} contains the word \"{word}\"."
    )
    where = LikeCondition(expr=_col(table, tcol), pattern=Literal(f"%{word}%", "string"))
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_count_filtered(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    if not num_cols:
        return None
    num = ctx.rng.choice(num_cols)
    value = ctx.threshold(table, num)
    if value is None:
        return None
    question = _phrase(ctx, [
        f"How many {_table_phrase(table)} have a {_col_phrase(num)} greater "
        f"than {value}?",
        f"Count the {_table_phrase(table)} whose {_col_phrase(num)} is "
        f"greater than {value}.",
    ])
    where = Comparison(op=">", left=_col(table, num), right=_lit(value))
    query = _select(table, [SelectItem(FuncCall("COUNT", ColumnRef("*")))], where=where)
    return GeneratedExample(question, query)


def t_between(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    out_cols = ctx.plain_columns(table)
    if not num_cols or not out_cols:
        return None
    num = ctx.rng.choice(num_cols)
    out = ctx.rng.choice(out_cols)
    values = sorted(ctx.values(table, num))
    if len(values) < 6:
        return None
    low = values[len(values) // 4]
    high = values[3 * len(values) // 4]
    if low == high:
        return None
    question = (
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(num)} is between {low} and {high}."
    )
    where = BetweenCondition(expr=_col(table, num), low=_lit(low), high=_lit(high))
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_join_filter(ctx: TemplateContext) -> Optional[GeneratedExample]:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, child_col, parent, parent_col = ctx.rng.choice(pairs)
    child_out = ctx.name_column(child) or (ctx.plain_columns(child) or [None])[0]
    parent_name = ctx.name_column(parent)
    if child_out is None or parent_name is None:
        return None
    value = ctx.sample_value(parent, parent_name)
    if value is None:
        return None
    question = (
        f"List the {_col_phrase(child_out)} of {_table_phrase(child)} of the "
        f"{_table_phrase(parent, plural=False)} whose "
        f"{_col_phrase(parent_name)} is \"{value}\"."
    )
    where = Comparison(
        op="=",
        left=ColumnRef(column=parent_name.name, table=parent.name),
        right=_lit(value),
    )
    query = _join_query(
        child, child_col, parent, parent_col,
        [SelectItem(ColumnRef(column=child_out.name, table=child.name))],
        where=where,
    )
    return GeneratedExample(question, query)


# ---------------------------------------------------------------------------
# Hard templates
# ---------------------------------------------------------------------------


def t_group_having(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    text_cols = ctx.text_columns(table)
    if not text_cols:
        return None
    col = ctx.rng.choice(text_cols)
    n = ctx.rng.randint(1, 3)
    question = (
        f"Which {_col_phrase(col)} values appear more than {n} times among "
        f"{_table_phrase(table)}?"
    )
    having = Comparison(
        op=">", left=FuncCall("COUNT", ColumnRef("*")), right=_lit(n)
    )
    query = _select(
        table,
        [SelectItem(_col(table, col))],
        group_by=(_col(table, col),),
        having=having,
    )
    return GeneratedExample(question, query)


def t_argmax_group(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    text_cols = ctx.text_columns(table)
    if not text_cols:
        return None
    col = ctx.rng.choice(text_cols)
    question = _phrase(ctx, [
        f"Which {_col_phrase(col)} has the most {_table_phrase(table)}?",
        f"Which {_col_phrase(col)} is most common among "
        f"{_table_phrase(table)}?",
    ])
    query = _select(
        table,
        [SelectItem(_col(table, col))],
        group_by=(_col(table, col),),
        order_by=(OrderItem(FuncCall("COUNT", ColumnRef("*")), direction="DESC"),),
        limit=1,
    )
    return GeneratedExample(question, query)


def t_above_average(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    out_cols = ctx.plain_columns(table)
    if not num_cols or not out_cols:
        return None
    num = ctx.rng.choice(num_cols)
    out = ctx.rng.choice(out_cols)
    question = _phrase(ctx, [
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(num)} is above the average {_col_phrase(num)}.",
        f"Show the {_col_phrase(out)} of {_table_phrase(table)} with "
        f"{_col_phrase(num)} above average.",
    ])
    sub = _select(table, [SelectItem(FuncCall("AVG", _col(table, num)))])
    where = Comparison(op=">", left=_col(table, num), right=sub)
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_eq_extreme(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    out_cols = ctx.plain_columns(table)
    if not num_cols or not out_cols:
        return None
    num = ctx.rng.choice(num_cols)
    out = ctx.rng.choice(out_cols)
    agg, phrase = ctx.rng.choice([("MAX", "highest"), ("MIN", "lowest")])
    question = _phrase(ctx, [
        f"List the {_col_phrase(out)} of the "
        f"{_table_phrase(table, plural=False)} with the {phrase} "
        f"{_col_phrase(num)}.",
        f"Which {_table_phrase(table, plural=False)} has the {phrase} "
        f"{_col_phrase(num)}? Give its {_col_phrase(out)}.",
    ])
    sub = _select(table, [SelectItem(FuncCall(agg, _col(table, num)))])
    where = Comparison(op="=", left=_col(table, num), right=sub)
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_join_group_count(ctx: TemplateContext) -> Optional[GeneratedExample]:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, child_col, parent, parent_col = ctx.rng.choice(pairs)
    parent_name = ctx.name_column(parent)
    if parent_name is None:
        return None
    question = (
        f"For each {_table_phrase(parent, plural=False)}, show its "
        f"{_col_phrase(parent_name)} and the number of "
        f"{_table_phrase(child)} it has."
    )
    query = _join_query(
        child, child_col, parent, parent_col,
        [
            SelectItem(ColumnRef(column=parent_name.name, table=parent.name)),
            SelectItem(FuncCall("COUNT", ColumnRef("*"))),
        ],
        group_by=(ColumnRef(column=parent_name.name, table=parent.name),),
    )
    return GeneratedExample(question, query)


def t_two_conditions(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    text_cols = ctx.text_columns(table)
    out_cols = ctx.plain_columns(table)
    if not num_cols or not text_cols or not out_cols:
        return None
    num = ctx.rng.choice(num_cols)
    tcol = ctx.rng.choice(text_cols)
    out = ctx.rng.choice(out_cols)
    threshold = ctx.threshold(table, num)
    value = ctx.sample_value(table, tcol)
    if threshold is None or value is None:
        return None
    question = (
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(num)} is greater than {threshold} and whose "
        f"{_col_phrase(tcol)} is \"{value}\"."
    )
    where = AndCondition(
        operands=(
            Comparison(op=">", left=_col(table, num), right=_lit(threshold)),
            Comparison(op="=", left=_col(table, tcol), right=_lit(value)),
        )
    )
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_or_conditions(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    text_cols = ctx.text_columns(table)
    out_cols = ctx.plain_columns(table)
    if not text_cols or not out_cols:
        return None
    tcol = ctx.rng.choice(text_cols)
    out = ctx.rng.choice(out_cols)
    values = list(dict.fromkeys(ctx.values(table, tcol)))
    if len(values) < 2:
        return None
    v1, v2 = ctx.rng.sample(values, 2)
    question = (
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(tcol)} is \"{v1}\" or \"{v2}\"."
    )
    where = OrCondition(
        operands=(
            Comparison(op="=", left=_col(table, tcol), right=_lit(v1)),
            Comparison(op="=", left=_col(table, tcol), right=_lit(v2)),
        )
    )
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


def t_join_agg(ctx: TemplateContext) -> Optional[GeneratedExample]:
    pairs = ctx.fk_pairs()
    candidates = []
    for child, child_col, parent, parent_col in pairs:
        nums = ctx.numeric_columns(child)
        parent_name = ctx.name_column(parent)
        if nums and parent_name is not None:
            candidates.append((child, child_col, parent, parent_col, nums, parent_name))
    if not candidates:
        return None
    child, child_col, parent, parent_col, nums, parent_name = ctx.rng.choice(candidates)
    num = ctx.rng.choice(nums)
    value = ctx.sample_value(parent, parent_name)
    if value is None:
        return None
    agg, phrase = ctx.rng.choice([("SUM", "total"), ("AVG", "average"),
                                  ("MAX", "maximum")])
    question = (
        f"What is the {phrase} {_col_phrase(num)} of {_table_phrase(child)} "
        f"of the {_table_phrase(parent, plural=False)} whose "
        f"{_col_phrase(parent_name)} is \"{value}\"?"
    )
    where = Comparison(
        op="=",
        left=ColumnRef(column=parent_name.name, table=parent.name),
        right=_lit(value),
    )
    query = _join_query(
        child, child_col, parent, parent_col,
        [SelectItem(FuncCall(agg, ColumnRef(column=num.name, table=child.name)))],
        where=where,
    )
    return GeneratedExample(question, query)


def t_most_children(ctx: TemplateContext) -> Optional[GeneratedExample]:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, child_col, parent, parent_col = ctx.rng.choice(pairs)
    parent_name = ctx.name_column(parent)
    if parent_name is None:
        return None
    question = _phrase(ctx, [
        f"What is the {_col_phrase(parent_name)} of the "
        f"{_table_phrase(parent, plural=False)} with the most "
        f"{_table_phrase(child)}?",
        f"Which {_table_phrase(parent, plural=False)} has the most "
        f"{_table_phrase(child)}? Give its {_col_phrase(parent_name)}.",
    ])
    query = _join_query(
        child, child_col, parent, parent_col,
        [SelectItem(ColumnRef(column=parent_name.name, table=parent.name))],
        group_by=(ColumnRef(column=parent_name.name, table=parent.name),),
        order_by=(OrderItem(FuncCall("COUNT", ColumnRef("*")), direction="DESC"),),
        limit=1,
    )
    return GeneratedExample(question, query)


# ---------------------------------------------------------------------------
# Extra-hard templates
# ---------------------------------------------------------------------------


def t_not_in(ctx: TemplateContext) -> Optional[GeneratedExample]:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, child_col, parent, parent_col = ctx.rng.choice(pairs)
    parent_name = ctx.name_column(parent)
    if parent_name is None:
        return None
    question = _phrase(ctx, [
        f"List the {_col_phrase(parent_name)} of {_table_phrase(parent)} "
        f"that have no {_table_phrase(child)}.",
        f"Which {_table_phrase(parent)} have no {_table_phrase(child)}? "
        f"Give their {_col_phrase(parent_name)}.",
    ])
    sub = _select(child, [SelectItem(ColumnRef(column=child_col))])
    where = InCondition(
        expr=ColumnRef(column=parent_col), values=sub, negated=True
    )
    query = _select(parent, [SelectItem(ColumnRef(column=parent_name.name))],
                    where=where)
    return GeneratedExample(question, query)


def t_in_subquery(ctx: TemplateContext) -> Optional[GeneratedExample]:
    pairs = ctx.fk_pairs()
    candidates = []
    for child, child_col, parent, parent_col in pairs:
        nums = ctx.numeric_columns(child)
        parent_name = ctx.name_column(parent)
        if nums and parent_name is not None:
            candidates.append((child, child_col, parent, parent_col, nums, parent_name))
    if not candidates:
        return None
    child, child_col, parent, parent_col, nums, parent_name = ctx.rng.choice(candidates)
    num = ctx.rng.choice(nums)
    threshold = ctx.threshold(child, num)
    if threshold is None:
        return None
    question = (
        f"List the {_col_phrase(parent_name)} of {_table_phrase(parent)} "
        f"that have at least one {_table_phrase(child, plural=False)} with "
        f"{_col_phrase(num)} greater than {threshold}."
    )
    sub_where = Comparison(op=">", left=ColumnRef(column=num.name),
                           right=_lit(threshold))
    sub = _select(child, [SelectItem(ColumnRef(column=child_col))], where=sub_where)
    where = InCondition(expr=ColumnRef(column=parent_col), values=sub)
    query = _select(parent, [SelectItem(ColumnRef(column=parent_name.name))],
                    where=where)
    return GeneratedExample(question, query)


def t_intersect(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    text_cols = ctx.text_columns(table)
    if len(num_cols) < 1 or len(text_cols) < 1:
        return None
    num = ctx.rng.choice(num_cols)
    tcol = ctx.rng.choice(text_cols)
    out = ctx.name_column(table)
    if out is None or out.name == tcol.name:
        return None
    values = sorted(ctx.values(table, num))
    if len(values) < 4:
        return None
    threshold = values[len(values) // 2]
    tvalue = ctx.sample_value(table, tcol)
    if tvalue is None:
        return None
    question = (
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(num)} is greater than {threshold} and that also have "
        f"a {_col_phrase(tcol)} of \"{tvalue}\"."
    )
    left = _select(
        table,
        [SelectItem(_col(table, out))],
        where=Comparison(op=">", left=_col(table, num), right=_lit(threshold)),
    )
    right = _select(
        table,
        [SelectItem(_col(table, out))],
        where=Comparison(op="=", left=_col(table, tcol), right=_lit(tvalue)),
    )
    query = Query(core=left.core, set_op="INTERSECT", set_query=right)
    return GeneratedExample(question, query)


def t_union(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    num_cols = ctx.numeric_columns(table)
    text_cols = ctx.text_columns(table)
    out = ctx.name_column(table)
    if not num_cols or not text_cols or out is None:
        return None
    num = ctx.rng.choice(num_cols)
    tcol = ctx.rng.choice(text_cols)
    threshold = ctx.threshold(table, num)
    tvalue = ctx.sample_value(table, tcol)
    if threshold is None or tvalue is None:
        return None
    question = (
        f"List the {_col_phrase(out)} of {_table_phrase(table)} that have a "
        f"{_col_phrase(num)} above {threshold} or a {_col_phrase(tcol)} of "
        f"\"{tvalue}\"."
    )
    left = _select(
        table,
        [SelectItem(_col(table, out))],
        where=Comparison(op=">", left=_col(table, num), right=_lit(threshold)),
    )
    right = _select(
        table,
        [SelectItem(_col(table, out))],
        where=Comparison(op="=", left=_col(table, tcol), right=_lit(tvalue)),
    )
    query = Query(core=left.core, set_op="UNION", set_query=right)
    return GeneratedExample(question, query)


def t_except(ctx: TemplateContext) -> Optional[GeneratedExample]:
    table = ctx.pick_table()
    text_cols = ctx.text_columns(table)
    out = ctx.name_column(table)
    if out is None:
        return None
    others = [c for c in text_cols if c.name != out.name]
    if not others:
        return None
    tcol = ctx.rng.choice(others)
    tvalue = ctx.sample_value(table, tcol)
    if tvalue is None:
        return None
    question = (
        f"List the {_col_phrase(out)} of all {_table_phrase(table)} except "
        f"those whose {_col_phrase(tcol)} is \"{tvalue}\"."
    )
    left = _select(table, [SelectItem(_col(table, out))])
    right = _select(
        table,
        [SelectItem(_col(table, out))],
        where=Comparison(op="=", left=_col(table, tcol), right=_lit(tvalue)),
    )
    query = Query(core=left.core, set_op="EXCEPT", set_query=right)
    return GeneratedExample(question, query)


def t_join_having(ctx: TemplateContext) -> Optional[GeneratedExample]:
    pairs = ctx.fk_pairs()
    if not pairs:
        return None
    child, child_col, parent, parent_col = ctx.rng.choice(pairs)
    parent_name = ctx.name_column(parent)
    if parent_name is None:
        return None
    n = ctx.rng.randint(1, 3)
    question = _phrase(ctx, [
        f"List the {_col_phrase(parent_name)} of "
        f"{_table_phrase(parent)} that have more than {n} "
        f"{_table_phrase(child)}.",
        f"Which {_table_phrase(parent)} have more than {n} "
        f"{_table_phrase(child)}? Give their {_col_phrase(parent_name)}.",
    ])
    having = Comparison(op=">", left=FuncCall("COUNT", ColumnRef("*")), right=_lit(n))
    query = _join_query(
        child, child_col, parent, parent_col,
        [SelectItem(ColumnRef(column=parent_name.name, table=parent.name))],
        group_by=(ColumnRef(column=parent_name.name, table=parent.name),),
        having=having,
    )
    return GeneratedExample(question, query)


def t_join3(ctx: TemplateContext) -> Optional[GeneratedExample]:
    """Three-table join along an FK chain (child → mid → top)."""
    pairs = ctx.fk_pairs()
    chains = []
    for child, child_col, mid, mid_col in pairs:
        for mid2, mid2_col, top, top_col in pairs:
            if mid2.name == mid.name and top.name not in (child.name, mid.name):
                chains.append(
                    (child, child_col, mid, mid_col, mid2_col, top, top_col)
                )
    if not chains:
        return None
    child, child_col, mid, mid_col, mid2_col, top, top_col = ctx.rng.choice(chains)
    top_name = ctx.name_column(top)
    nums = ctx.numeric_columns(child)
    if top_name is None or not nums:
        return None
    num = ctx.rng.choice(nums)
    threshold = ctx.threshold(child, num)
    if threshold is None:
        return None
    question = (
        f"List the {_col_phrase(top_name)} of {_table_phrase(top)} whose "
        f"{_table_phrase(mid)} have {_table_phrase(child)} with "
        f"{_col_phrase(num)} greater than {threshold}."
    )
    on_mid = Comparison(
        op="=",
        left=ColumnRef(column=child_col, table=child.name),
        right=ColumnRef(column=mid_col, table=mid.name),
    )
    on_top = Comparison(
        op="=",
        left=ColumnRef(column=mid2_col, table=mid.name),
        right=ColumnRef(column=top_col, table=top.name),
    )
    where = Comparison(
        op=">", left=ColumnRef(column=num.name, table=child.name),
        right=_lit(threshold),
    )
    query = Query(
        core=SelectCore(
            items=(SelectItem(
                ColumnRef(column=top_name.name, table=top.name)),),
            from_clause=FromClause(
                source=TableRef(name=child.name),
                joins=(
                    Join(source=TableRef(name=mid.name), condition=on_mid),
                    Join(source=TableRef(name=top.name), condition=on_top),
                ),
            ),
            where=where,
            distinct=True,
        )
    )
    return GeneratedExample(question, query)


def t_year_filter(ctx: TemplateContext) -> Optional[GeneratedExample]:
    """Filter a date column to one year via LIKE 'YYYY%'."""
    table = ctx.pick_table()
    time_cols = [c for c in table.columns if c.ctype == "time"]
    out_cols = ctx.plain_columns(table)
    if not time_cols or not out_cols:
        return None
    tcol = ctx.rng.choice(time_cols)
    out = ctx.rng.choice([c for c in out_cols if c.name != tcol.name] or out_cols)
    values = [str(v) for v in ctx.values(table, tcol)]
    if not values:
        return None
    year = ctx.rng.choice(values)[:4]
    question = _phrase(ctx, [
        f"List the {_col_phrase(out)} of {_table_phrase(table)} whose "
        f"{_col_phrase(tcol)} is in {year}.",
        f"Show the {_col_phrase(out)} of {_table_phrase(table)} with a "
        f"{_col_phrase(tcol)} in the year {year}.",
    ])
    where = LikeCondition(expr=_col(table, tcol),
                          pattern=Literal(f"{year}%", "string"))
    query = _select(table, [SelectItem(_col(table, out))], where=where)
    return GeneratedExample(question, query)


#: All templates, tagged with a difficulty weight (heavier = sampled more).
TEMPLATES: List[Tuple[TemplateFn, int]] = [
    (t_list_column, 2),
    (t_two_columns, 2),
    (t_count_all, 2),
    (t_distinct, 1),
    (t_count_distinct, 1),
    (t_simple_agg, 2),
    (t_filter_numeric, 3),
    (t_filter_text, 3),
    (t_order_limit, 5),
    (t_order_all, 3),
    (t_group_count, 3),
    (t_agg_filtered, 4),
    (t_like, 3),
    (t_count_filtered, 3),
    (t_between, 2),
    (t_join_filter, 6),
    (t_group_having, 4),
    (t_argmax_group, 4),
    (t_above_average, 4),
    (t_eq_extreme, 4),
    (t_join_group_count, 4),
    (t_two_conditions, 3),
    (t_or_conditions, 2),
    (t_join_agg, 4),
    (t_most_children, 4),
    (t_not_in, 4),
    (t_in_subquery, 3),
    (t_intersect, 3),
    (t_union, 3),
    (t_except, 3),
    (t_join_having, 3),
    (t_join3, 3),
    (t_year_filter, 2),
]


def generate_examples(
    schema: DatabaseSchema,
    data: Rows,
    count: int,
    seed: int = 0,
    require_execution: bool = True,
) -> List[GeneratedExample]:
    """Generate up to ``count`` distinct examples for one database.

    When ``require_execution`` is set, every gold query is executed against
    a freshly built database and discarded if it fails (a structural bug) —
    empty results are allowed for a small fraction, mirroring Spider.
    """
    from ...db.sqlite_backend import Database

    rng = rng_from("questions", schema.db_id, str(seed))
    ctx = TemplateContext(schema, data, rng)
    weighted = [fn for fn, weight in TEMPLATES for _ in range(weight)]

    database = Database.build(schema, data) if require_execution else None
    seen = set()
    out: List[GeneratedExample] = []
    empty_allowed = max(2, count // 8)
    empties = 0
    attempts = 0
    max_attempts = count * 60
    try:
        while len(out) < count and attempts < max_attempts:
            attempts += 1
            template = rng.choice(weighted)
            example = template(ctx)
            if example is None:
                continue
            key = (example.question, example.sql)
            if key in seen:
                continue
            if database is not None:
                rows = database.try_execute(example.sql)
                if rows is None:
                    continue
                if not rows:
                    if empties >= empty_allowed:
                        continue
                    empties += 1
            seen.add(key)
            out.append(example)
    finally:
        if database is not None:
            database.close()
    return out
