"""Static value pools for synthetic database population.

Each pool is a deterministic list of realistic values; the populator samples
from them with a seeded RNG, so corpora are reproducible.  Pools are referred
to by name from :mod:`repro.dataset.generator.domains` column specs.
"""

from __future__ import annotations

from typing import Dict, List

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
    "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony", "Margaret",
    "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
    "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa", "Timothy",
    "Deborah", "Wei", "Yuki", "Amara", "Sofia", "Liam", "Noah", "Olivia",
    "Emma", "Ava", "Lucas", "Mia", "Elena", "Hassan", "Priya", "Chen",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Kim", "Chen", "Singh", "Kumar", "Ali", "Tanaka",
]

CITIES = [
    "New York", "Los Angeles", "Chicago", "Houston", "Phoenix", "Boston",
    "Seattle", "Denver", "Austin", "Portland", "Atlanta", "Miami", "Dallas",
    "San Diego", "San Jose", "Detroit", "Memphis", "Nashville", "Baltimore",
    "Milwaukee", "London", "Paris", "Berlin", "Madrid", "Rome", "Vienna",
    "Amsterdam", "Dublin", "Lisbon", "Prague", "Tokyo", "Osaka", "Seoul",
    "Beijing", "Shanghai", "Singapore", "Sydney", "Melbourne", "Toronto",
    "Vancouver", "Montreal", "Mexico City", "Sao Paulo", "Buenos Aires",
    "Cairo", "Lagos", "Nairobi", "Mumbai", "Delhi", "Bangkok",
]

COUNTRIES = [
    "United States", "United Kingdom", "France", "Germany", "Spain", "Italy",
    "Netherlands", "Ireland", "Portugal", "Austria", "Japan", "South Korea",
    "China", "Singapore", "Australia", "Canada", "Mexico", "Brazil",
    "Argentina", "Egypt", "Nigeria", "Kenya", "India", "Thailand", "Sweden",
    "Norway", "Denmark", "Finland", "Poland", "Switzerland",
]

COLORS = [
    "Red", "Blue", "Green", "Yellow", "Black", "White", "Silver", "Gold",
    "Purple", "Orange", "Brown", "Gray", "Pink", "Cyan", "Magenta",
]

GENRES = [
    "Rock", "Pop", "Jazz", "Classical", "Hip Hop", "Country", "Blues",
    "Electronic", "Folk", "Reggae", "Metal", "Soul", "Funk", "Latin",
    "Indie",
]

INSTRUMENTS = [
    "Guitar", "Piano", "Violin", "Drums", "Bass", "Saxophone", "Trumpet",
    "Cello", "Flute", "Clarinet", "Harp", "Accordion",
]

DEPARTMENTS = [
    "Engineering", "Marketing", "Sales", "Finance", "Human Resources",
    "Research", "Operations", "Legal", "Support", "Design", "Security",
    "Logistics", "Procurement", "Quality Assurance",
]

JOB_TITLES = [
    "Engineer", "Manager", "Analyst", "Director", "Coordinator", "Designer",
    "Consultant", "Technician", "Specialist", "Administrator", "Developer",
    "Architect", "Accountant", "Scientist",
]

PRODUCT_NAMES = [
    "Laptop", "Smartphone", "Headphones", "Monitor", "Keyboard", "Mouse",
    "Tablet", "Camera", "Printer", "Speaker", "Router", "Microphone",
    "Charger", "Webcam", "Projector", "Scanner", "Drone", "Smartwatch",
    "Desk Lamp", "Backpack", "Water Bottle", "Notebook", "Pen Set",
    "Coffee Maker", "Blender", "Toaster", "Vacuum", "Fan", "Heater",
]

CATEGORIES = [
    "Electronics", "Furniture", "Clothing", "Food", "Toys", "Books",
    "Sports", "Garden", "Automotive", "Health", "Beauty", "Office",
]

AIRLINES = [
    "United Airlines", "Delta Air Lines", "American Airlines", "JetBlue",
    "Southwest Airlines", "Alaska Airlines", "British Airways", "Lufthansa",
    "Air France", "KLM", "Qantas", "Emirates", "Singapore Airlines",
    "Cathay Pacific", "ANA",
]

AIRPORTS = [
    "JFK", "LAX", "ORD", "ATL", "DFW", "DEN", "SFO", "SEA", "MIA", "BOS",
    "LHR", "CDG", "FRA", "AMS", "MAD", "NRT", "ICN", "PEK", "SIN", "SYD",
]

UNIVERSITIES = [
    "State University", "Tech Institute", "City College",
    "Riverside University", "Lakeside College", "Mountain University",
    "Central Academy", "Coastal University", "Valley College",
    "Northern Institute", "Southern University", "Eastern College",
    "Western Academy",
]

COURSES = [
    "Calculus", "Linear Algebra", "Databases", "Operating Systems",
    "Algorithms", "Statistics", "Physics", "Chemistry", "Biology",
    "Economics", "Psychology", "Philosophy", "History", "Literature",
    "Machine Learning", "Networks", "Compilers", "Graphics",
]

MAJORS = [
    "Computer Science", "Mathematics", "Physics", "Chemistry", "Biology",
    "Economics", "Psychology", "History", "English", "Engineering",
    "Business", "Art", "Music", "Philosophy",
]

PET_TYPES = ["Dog", "Cat", "Bird", "Fish", "Rabbit", "Hamster", "Turtle", "Lizard"]

DOG_BREEDS = [
    "Labrador", "Poodle", "Bulldog", "Beagle", "Terrier", "Husky",
    "Dachshund", "Boxer", "Collie", "Retriever", "Spaniel", "Shepherd",
]

TEAM_NAMES = [
    "Tigers", "Eagles", "Sharks", "Wolves", "Falcons", "Lions", "Bears",
    "Panthers", "Hawks", "Dragons", "Raptors", "Knights", "Titans",
    "Rangers", "Comets",
]

STADIUM_NAMES = [
    "Memorial Stadium", "Victory Arena", "Riverside Park", "Grand Coliseum",
    "Sunset Field", "Harbor Stadium", "Union Grounds", "Liberty Arena",
    "Summit Park", "Eagle Field", "Crystal Dome", "Horizon Stadium",
]

HOTEL_NAMES = [
    "Grand Plaza", "Seaside Inn", "Mountain Lodge", "City Central Hotel",
    "Riverside Suites", "The Palms", "Harbor View", "Golden Gate Inn",
    "Royal Crown", "Park Regency", "Blue Lagoon Resort", "Summit Hotel",
]

MOVIE_TITLES = [
    "The Last Voyage", "Midnight Sun", "Silent Echo", "Crimson Tide Rising",
    "The Glass Tower", "Forgotten Shores", "Steel Horizon", "Paper Moon",
    "The Ninth Gate", "Winter Light", "Electric Dreams", "The Long Road",
    "Shadow Play", "Golden Hour", "The Quiet Storm", "Broken Arrow",
    "Emerald City", "The Final Act", "Northern Lights", "Desert Bloom",
]

DIRECTOR_NAMES = [
    "Ava Chen", "Marcus Webb", "Sofia Ruiz", "James Okafor", "Nina Petrov",
    "Daniel Park", "Lucia Moreno", "Henry Walsh", "Mei Lin", "Omar Farouk",
]

BOOK_TITLES = [
    "The Silent River", "Echoes of Tomorrow", "A Winter's Tale",
    "The Cartographer", "Beneath the Surface", "The Last Library",
    "Songs of the Valley", "The Clockmaker's Daughter", "Distant Shores",
    "The Amber Room", "Letters from Nowhere", "The Fifth Season",
    "Garden of Stones", "The Night Circus", "Salt and Light",
]

PUBLISHERS = [
    "Harbor Press", "Northfield Books", "Crescent Publishing", "Oakwood",
    "Silverline Press", "Meridian House", "Bluebird Books", "Stonegate",
]

ADJECTIVES = [
    "quick", "bright", "calm", "eager", "gentle", "happy", "keen", "lively",
    "merry", "noble", "proud", "quiet", "swift", "warm", "wise", "bold",
]

DATE_YEARS = list(range(1990, 2024))

POOLS: Dict[str, List[str]] = {
    "first_names": FIRST_NAMES,
    "last_names": LAST_NAMES,
    "full_names": [],  # filled below
    "cities": CITIES,
    "countries": COUNTRIES,
    "colors": COLORS,
    "genres": GENRES,
    "instruments": INSTRUMENTS,
    "departments": DEPARTMENTS,
    "job_titles": JOB_TITLES,
    "products": PRODUCT_NAMES,
    "categories": CATEGORIES,
    "airlines": AIRLINES,
    "airports": AIRPORTS,
    "universities": UNIVERSITIES,
    "courses": COURSES,
    "majors": MAJORS,
    "pet_types": PET_TYPES,
    "dog_breeds": DOG_BREEDS,
    "teams": TEAM_NAMES,
    "stadiums": STADIUM_NAMES,
    "hotels": HOTEL_NAMES,
    "movies": MOVIE_TITLES,
    "directors": DIRECTOR_NAMES,
    "books": BOOK_TITLES,
    "publishers": PUBLISHERS,
    "adjectives": ADJECTIVES,
}

# Cross product of a subset of first/last names; ~3.5k distinct values.
POOLS["full_names"] = [
    f"{first} {last}" for first in FIRST_NAMES for last in LAST_NAMES[:56:2]
]


def pool(name: str) -> List[str]:
    """Look up a value pool by name.

    Raises:
        KeyError: for unknown pool names (programming error in a domain
            spec, surfaced loudly).
    """
    return POOLS[name]
