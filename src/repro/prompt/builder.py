"""Prompt assembly with a token budget.

The builder combines an examples section (per the chosen organization) with
the target question block (per the chosen representation), counts tokens,
and drops least-relevant examples until the prompt fits ``max_tokens`` —
exactly how DAIL-SQL packs as many examples as the context allows.

Convention: the example list is in **prompt order** — least similar first,
most similar last (adjacent to the target question), matching the paper's
layout.  Budget truncation therefore drops from the *front*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import PromptError
from ..schema.model import DatabaseSchema
from ..tokenizer.counter import TokenCounter
from .organization import ExampleBlock, Organization
from .representation import Representation, RepresentationOptions


@dataclass
class Prompt:
    """A fully assembled prompt plus the structured context it encodes.

    ``text`` is the exact string a real API call would send (and what token
    accounting uses).  The structured fields mirror the same content for
    downstream consumers (the simulated LLM measures prompt features from
    them; experiments log them).
    """

    text: str
    representation_id: str
    organization_id: str
    options: RepresentationOptions
    db_id: str
    question: str
    schema: DatabaseSchema
    examples: List[ExampleBlock]
    requested_examples: int
    token_count: int
    response_prefix: str
    #: Resolved ablation state (defaults applied): does the prompt carry
    #: foreign-key information / the "no explanation" rule?
    includes_foreign_keys: bool = False
    includes_rule: bool = False

    @property
    def n_examples(self) -> int:
        return len(self.examples)


#: Process-wide token-count memo.  The counter is a bounded thread-safe
#: LRU, so sharing it across every builder (and every worker thread) is
#: safe and lets grid configs reuse each other's schema/example counts.
_SHARED_COUNTER = TokenCounter()


class PromptBuilder:
    """Build prompts for one (representation, organization) combination."""

    def __init__(
        self,
        representation: Representation,
        organization: Organization,
        max_tokens: Optional[int] = None,
        counter: Optional[TokenCounter] = None,
    ):
        self.representation = representation
        self.organization = organization
        self.max_tokens = max_tokens
        self.counter = counter or _SHARED_COUNTER

    def build(
        self,
        schema: DatabaseSchema,
        question: str,
        examples: Sequence[ExampleBlock] = (),
    ) -> Prompt:
        """Assemble a prompt; drops examples front-first to fit the budget.

        Raises:
            PromptError: if even the zero-shot prompt exceeds ``max_tokens``.
        """
        target_block = self.representation.render_question(schema, question)
        kept = list(examples)
        while True:
            example_section = self.organization.render(kept, self.representation)
            text = (
                f"{example_section}\n\n{target_block}" if example_section
                else target_block
            )
            tokens = self.counter.count(text)
            if self.max_tokens is None or tokens <= self.max_tokens:
                break
            if not kept:
                raise PromptError(
                    f"zero-shot prompt needs {tokens} tokens; budget is "
                    f"{self.max_tokens}"
                )
            kept.pop(0)

        return Prompt(
            text=text,
            representation_id=self.representation.id,
            organization_id=self.organization.id,
            options=self.representation.options,
            db_id=schema.db_id,
            question=question,
            schema=schema,
            examples=kept,
            requested_examples=len(examples),
            token_count=tokens,
            response_prefix=self.representation.response_prefix,
            includes_foreign_keys=self.representation.include_foreign_keys,
            includes_rule=(
                self.representation.id == "OD_P"
                or self.representation.options.rule_implication
            ),
        )
