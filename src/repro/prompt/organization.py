"""Example organization strategies (paper Section 3.2 / Table 4).

Given the selected in-context examples, an organization decides what of
each example enters the prompt:

* ``FI_O`` — Full Information: every example keeps its own schema,
  question and gold SQL in the target representation's format.  Maximal
  signal, maximal tokens.
* ``SQL_O`` — SQL Only: only the gold SQL queries are shown.  Cheapest,
  but drops the question→SQL mapping.
* ``DAIL_O`` — DAIL Organization: question–SQL *pairs* without schema —
  keeps the mapping the model learns from while dropping the cross-domain
  schema tokens.  The DAIL-SQL choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Type

from ..errors import PromptError
from ..schema.model import DatabaseSchema
from .representation import Representation

#: Canonical organization ids in paper order.
ORGANIZATION_IDS = ("FI_O", "SQL_O", "DAIL_O")


@dataclass(frozen=True)
class ExampleBlock:
    """One selected example, resolved to everything organizations need."""

    question: str
    sql: str
    schema: DatabaseSchema


class Organization:
    """Base class: renders a list of examples into one prompt section."""

    id: str = ""
    name: str = ""

    def render(
        self, examples: Sequence[ExampleBlock], representation: Representation
    ) -> str:
        """Render the examples section (empty string for zero examples)."""
        raise NotImplementedError


class FullInformation(Organization):
    """FI_O — each example in the full representation format."""

    id = "FI_O"
    name = "Full Information"

    def render(self, examples, representation) -> str:
        if not examples:
            return ""
        blocks = [
            representation.render_example(e.schema, e.question, e.sql)
            for e in examples
        ]
        return "\n\n".join(blocks)


class SqlOnly(Organization):
    """SQL_O — gold SQL only, prefixed by a short header."""

    id = "SQL_O"
    name = "SQL Only"

    def render(self, examples, representation) -> str:
        if not examples:
            return ""
        lines = ["/* Some SQL examples are provided based on similar problems: */"]
        lines.extend(e.sql.rstrip(";") + ";" for e in examples)
        return "\n".join(lines)


class DailOrganization(Organization):
    """DAIL_O — question–SQL pairs, no schema."""

    id = "DAIL_O"
    name = "DAIL Organization"

    def render(self, examples, representation) -> str:
        if not examples:
            return ""
        lines = [
            "/* Some example questions and corresponding SQL queries "
            "are provided based on similar problems: */"
        ]
        for example in examples:
            lines.append(f"/* Answer the following: {example.question} */")
            lines.append(example.sql.rstrip(";") + ";")
        return "\n".join(lines)


_REGISTRY: Dict[str, Type[Organization]] = {
    cls.id: cls for cls in (FullInformation, SqlOnly, DailOrganization)
}


def get_organization(org_id: str) -> Organization:
    """Instantiate an organization by id.

    Raises:
        PromptError: for unknown ids.
    """
    try:
        return _REGISTRY[org_id]()
    except KeyError as exc:
        raise PromptError(
            f"unknown organization {org_id!r}; expected one of {sorted(_REGISTRY)}"
        ) from exc
