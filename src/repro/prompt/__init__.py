"""Prompt engineering: question representations, example organizations,
and budgeted prompt assembly."""

from .builder import Prompt, PromptBuilder
from .organization import (
    ORGANIZATION_IDS,
    DailOrganization,
    ExampleBlock,
    FullInformation,
    Organization,
    SqlOnly,
    get_organization,
)
from .representation import (
    REPRESENTATION_IDS,
    AlpacaSFT,
    BasicPrompt,
    CodeRepresentation,
    OpenAIDemonstration,
    Representation,
    RepresentationOptions,
    TextRepresentation,
    get_representation,
)

__all__ = [
    "Prompt", "PromptBuilder", "ORGANIZATION_IDS", "DailOrganization",
    "ExampleBlock", "FullInformation", "Organization", "SqlOnly",
    "get_organization", "REPRESENTATION_IDS", "AlpacaSFT", "BasicPrompt",
    "CodeRepresentation", "OpenAIDemonstration", "Representation",
    "RepresentationOptions", "TextRepresentation", "get_representation",
]
