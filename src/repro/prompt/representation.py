"""The paper's five question representations.

Each representation renders (schema, question) into prompt text for the
zero-shot setting, and also renders full in-context examples for the
Full-Information organization:

* ``BS_P`` — Basic Prompt: bare ``Table ...`` schema lines, ``Q:`` / ``A:``.
* ``TR_P`` — Text Representation: natural-language instruction + schema.
* ``OD_P`` — OpenAI Demonstration: pound-sign comments and the
  "Complete sqlite SQL query only and with no explanation" rule.
* ``CR_P`` — Code Representation: ``CREATE TABLE`` DDL (with foreign keys),
  question in SQL comments — the DAIL-SQL choice.
* ``AS_P`` — Alpaca SFT: the markdown instruction format used for
  supervised fine-tuning.

Two ablation switches mirror the paper's Table 2: ``foreign_keys`` adds or
removes FK information, and ``rule_implication`` adds the "with no
explanation" rule to representations that lack it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

from ..errors import PromptError
from ..schema.model import DatabaseSchema
from ..schema.serialize import (
    basic_schema,
    create_table_schema,
    foreign_key_text,
    openai_schema,
    text_schema,
)

#: Canonical representation ids in paper order.
REPRESENTATION_IDS = ("BS_P", "TR_P", "OD_P", "CR_P", "AS_P")

_NO_EXPLANATION_RULE = (
    "Complete sqlite SQL query only and with no explanation."
)


@dataclass(frozen=True)
class RepresentationOptions:
    """Ablation switches for a representation.

    ``foreign_keys=None`` means "the representation's default" (CR_P
    includes FKs by default, the rest do not — as in the paper).
    """

    foreign_keys: Optional[bool] = None
    rule_implication: bool = False


class Representation:
    """Base class: subclasses override the three ``render_*`` hooks."""

    id: str = ""
    name: str = ""
    #: Whether the representation includes FK info when options don't say.
    default_foreign_keys: bool = False
    #: Text the LLM's answer is expected to start with (e.g. "SELECT").
    response_prefix: str = "SELECT"

    def __init__(self, options: RepresentationOptions = RepresentationOptions()):
        self.options = options

    # -- hooks -------------------------------------------------------------

    def render_schema(self, schema: DatabaseSchema) -> str:
        raise NotImplementedError

    def render_question(self, schema: DatabaseSchema, question: str) -> str:
        """The target block: schema + question + answer lead-in."""
        raise NotImplementedError

    def render_example(
        self, schema: DatabaseSchema, question: str, sql: str
    ) -> str:
        """A full in-context example (schema + question + gold SQL)."""
        return f"{self.render_question(schema, question)} {sql}"

    # -- shared helpers ------------------------------------------------------

    @property
    def include_foreign_keys(self) -> bool:
        if self.options.foreign_keys is None:
            return self.default_foreign_keys
        return self.options.foreign_keys

    def _fk_suffix(self, schema: DatabaseSchema) -> str:
        if self.include_foreign_keys and schema.foreign_keys:
            return "\n" + foreign_key_text(schema)
        return ""

    def _rule_line(self) -> str:
        return _NO_EXPLANATION_RULE if self.options.rule_implication else ""


class BasicPrompt(Representation):
    """BS_P — no instruction, bare schema listing."""

    id = "BS_P"
    name = "Basic Prompt"

    def render_schema(self, schema: DatabaseSchema) -> str:
        return basic_schema(schema) + self._fk_suffix(schema)

    def render_question(self, schema: DatabaseSchema, question: str) -> str:
        parts = [self.render_schema(schema)]
        rule = self._rule_line()
        if rule:
            parts.append(rule)
        parts.append(f"Q: {question}")
        parts.append("A: SELECT")
        return "\n".join(parts)

    def render_example(self, schema, question, sql) -> str:
        body = self.render_question(schema, question)
        return body + " " + _strip_select(sql)


class TextRepresentation(Representation):
    """TR_P — natural-language instruction plus compact schema."""

    id = "TR_P"
    name = "Text Representation"

    def render_schema(self, schema: DatabaseSchema) -> str:
        return text_schema(schema) + self._fk_suffix(schema)

    def render_question(self, schema: DatabaseSchema, question: str) -> str:
        parts = ["Given the following database schema:", self.render_schema(schema)]
        rule = self._rule_line()
        if rule:
            parts.append(rule)
        parts.append(f"Answer the following: {question}")
        parts.append("SELECT")
        return "\n".join(parts)

    def render_example(self, schema, question, sql) -> str:
        body = self.render_question(schema, question)
        return body + " " + _strip_select(sql)


class OpenAIDemonstration(Representation):
    """OD_P — the pound-sign style of OpenAI's SQL-translate demo."""

    id = "OD_P"
    name = "OpenAI Demonstration"
    # OD_P carries the no-explanation rule natively.

    def render_schema(self, schema: DatabaseSchema) -> str:
        text = openai_schema(schema)
        if self.include_foreign_keys and schema.foreign_keys:
            text += "\n# " + foreign_key_text(schema)
        return text

    def render_question(self, schema: DatabaseSchema, question: str) -> str:
        parts = [f"### {_NO_EXPLANATION_RULE}", self.render_schema(schema)]
        parts.append(f"### {question}")
        parts.append("SELECT")
        return "\n".join(parts)

    def render_example(self, schema, question, sql) -> str:
        body = self.render_question(schema, question)
        return body + " " + _strip_select(sql)


class OpenAIDemonstrationNoPound(OpenAIDemonstration):
    """ODX_P — OD_P with the pound-sign comment markers stripped.

    Reproduces the anecdote in the paper's introduction: OpenAI's demo
    prompt uses ``#`` to separate prompt from response, and removing it
    significantly drops performance.  Identical content, no markers.
    """

    id = "ODX_P"
    name = "OpenAI Demonstration (no pound signs)"

    def render_schema(self, schema: DatabaseSchema) -> str:
        return _strip_pound(super().render_schema(schema))

    def render_question(self, schema: DatabaseSchema, question: str) -> str:
        return _strip_pound(super().render_question(schema, question))


def _strip_pound(text: str) -> str:
    lines = []
    for line in text.splitlines():
        stripped = line.lstrip("#").lstrip()
        if stripped or not line.startswith("#"):
            lines.append(stripped if line.startswith("#") else line)
    return "\n".join(lines)


class CodeRepresentation(Representation):
    """CR_P — CREATE TABLE DDL; the representation DAIL-SQL uses."""

    id = "CR_P"
    name = "Code Representation"
    default_foreign_keys = True

    def render_schema(self, schema: DatabaseSchema) -> str:
        return create_table_schema(
            schema, include_foreign_keys=self.include_foreign_keys
        )

    def render_question(self, schema: DatabaseSchema, question: str) -> str:
        parts = [
            "/* Given the following database schema: */",
            self.render_schema(schema),
        ]
        rule = self._rule_line()
        if rule:
            parts.append(f"-- {rule}")
        parts.append(
            "-- Using valid SQLite, answer the following questions "
            "for the tables provided above."
        )
        parts.append(f"-- {question}")
        parts.append("SELECT")
        return "\n".join(parts)

    def render_example(self, schema, question, sql) -> str:
        body = self.render_question(schema, question)
        return body + " " + _strip_select(sql)


class AlpacaSFT(Representation):
    """AS_P — the Alpaca instruction-tuning markdown format."""

    id = "AS_P"
    name = "Alpaca SFT Prompt"
    response_prefix = ""

    def render_schema(self, schema: DatabaseSchema) -> str:
        return text_schema(schema) + self._fk_suffix(schema)

    def render_question(self, schema: DatabaseSchema, question: str) -> str:
        rule = self._rule_line()
        instruction = (
            "Below is an instruction that describes a task, paired with an "
            "input that provides further context. Write a response that "
            "appropriately completes the request."
        )
        parts = [
            instruction,
            "### Instruction:",
            f'Write a sql to answer the question "{question}"',
        ]
        if rule:
            parts.append(rule)
        parts.extend(["### Input:", self.render_schema(schema), "### Response:"])
        return "\n".join(parts)

    def render_example(self, schema, question, sql) -> str:
        return f"{self.render_question(schema, question)}\n{sql}"


_REGISTRY: Dict[str, Type[Representation]] = {
    cls.id: cls
    for cls in (BasicPrompt, TextRepresentation, OpenAIDemonstration,
                OpenAIDemonstrationNoPound, CodeRepresentation, AlpacaSFT)
}


def get_representation(
    rep_id: str, options: RepresentationOptions = RepresentationOptions()
) -> Representation:
    """Instantiate a representation by id.

    Raises:
        PromptError: for unknown ids.
    """
    try:
        cls = _REGISTRY[rep_id]
    except KeyError as exc:
        raise PromptError(
            f"unknown representation {rep_id!r}; expected one of "
            f"{sorted(_REGISTRY)}"
        ) from exc
    return cls(options)


def _strip_select(sql: str) -> str:
    """Drop a leading SELECT so the example completes the 'SELECT' lead-in."""
    stripped = sql.strip()
    if stripped.upper().startswith("SELECT"):
        return stripped[len("SELECT"):].strip()
    return stripped
