"""Schema linking: find schema-element and value mentions in a question.

Used in two places:

* **Masked-question similarity** (MQS_S) and **DAIL selection** (DAIL_S)
  replace domain-specific words in the question with ``<mask>`` before
  computing similarity, so examples are matched on *intent* rather than on
  shared table names.
* The simulated LLM uses the linking coverage as one feature of how hard a
  question is for a model to ground.

The linker matches longest-first n-grams of the question against table and
column vocabulary (both original identifiers and natural-language names),
and flags numbers, quoted spans and capitalised non-initial words as value
mentions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..utils.text import STOPWORDS, snake_to_words
from .model import DatabaseSchema

_TOKEN_RE = re.compile(r"[A-Za-z0-9_']+|[^\sA-Za-z0-9_']")
_QUOTED_RE = re.compile(r"\"[^\"]+\"|'[^']+'|“[^”]+”")

MASK_TOKEN = "<mask>"

#: Maximum n-gram length considered when matching schema phrases.
_MAX_NGRAM = 4


@dataclass(frozen=True)
class Mention:
    """One linked span of the question.

    Attributes:
        start: token index of the first word of the mention.
        end: token index one past the mention.
        kind: ``"table"`` / ``"column"`` / ``"value"``.
        target: the matched schema element (``table`` or ``table.column``),
            or the literal text for values.
    """

    start: int
    end: int
    kind: str
    target: str


@dataclass
class SchemaLinking:
    """Result of linking one question against one schema."""

    question: str
    tokens: List[str]
    mentions: List[Mention] = field(default_factory=list)

    def tables(self) -> Set[str]:
        """Distinct tables mentioned (directly or via a column)."""
        found = set()
        for mention in self.mentions:
            if mention.kind == "table":
                found.add(mention.target)
            elif mention.kind == "column":
                found.add(mention.target.split(".", 1)[0])
        return found

    def columns(self) -> Set[str]:
        return {m.target for m in self.mentions if m.kind == "column"}

    def values(self) -> List[str]:
        return [m.target for m in self.mentions if m.kind == "value"]

    def coverage(self) -> float:
        """Fraction of non-stopword tokens covered by schema mentions."""
        content = [
            i for i, tok in enumerate(self.tokens)
            if tok.lower() not in STOPWORDS and any(c.isalnum() for c in tok)
        ]
        if not content:
            return 0.0
        covered = set()
        for mention in self.mentions:
            if mention.kind in ("table", "column"):
                covered.update(range(mention.start, mention.end))
        return len([i for i in content if i in covered]) / len(content)


class SchemaLinker:
    """Link questions against one database schema."""

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self._phrases = self._build_phrases(schema)

    @staticmethod
    def _build_phrases(schema: DatabaseSchema) -> Dict[Tuple[str, ...], Tuple[str, str]]:
        """Map word tuples to (kind, target), longest phrases preferred.

        Both the identifier split (``pet_age`` → ``pet age``) and the natural
        name are indexed; singular/plural variants of the last word are added
        so "singers" matches table ``singer``.

        When several schema elements produce the same phrase, the winner
        is deterministic: tables beat columns, and within a kind the
        element that appears first in schema order wins — never
        last-writer-wins, so reordering additions (or iterating a schema
        built differently) cannot flip which target a question links to.
        """
        phrases: Dict[Tuple[str, ...], Tuple[str, str]] = {}

        def add(words: List[str], kind: str, target: str):
            words = [w.lower() for w in words if w]
            if not words:
                return
            for key in [tuple(words)] + _plural_variants(words):
                existing = phrases.get(key)
                if existing is None or (
                    kind == "table" and existing[0] == "column"
                ):
                    phrases[key] = (kind, target)

        for table in schema.tables:
            add(snake_to_words(table.name), "table", table.name)
            add(table.natural_name.split(), "table", table.name)
            for column in table.columns:
                target = f"{table.name}.{column.name}"
                add(snake_to_words(column.name), "column", target)
                add(column.natural_name.split(), "column", target)
        return phrases

    def link(self, question: str) -> SchemaLinking:
        """Link a question; returns all non-overlapping mentions."""
        tokens = _TOKEN_RE.findall(question)
        linking = SchemaLinking(question=question, tokens=tokens)
        lowered = [t.lower() for t in tokens]
        taken = [False] * len(tokens)

        # Longest-first schema phrase matching.
        for length in range(min(_MAX_NGRAM, len(tokens)), 0, -1):
            for start in range(0, len(tokens) - length + 1):
                if any(taken[start:start + length]):
                    continue
                key = tuple(lowered[start:start + length])
                hit = self._phrases.get(key)
                if hit is None:
                    continue
                if length == 1 and key[0] in STOPWORDS:
                    continue
                kind, target = hit
                linking.mentions.append(
                    Mention(start=start, end=start + length, kind=kind, target=target)
                )
                for i in range(start, start + length):
                    taken[i] = True

        # Value mentions: quoted spans, numbers, capitalised mid-sentence words.
        quoted_words = set()
        for match in _QUOTED_RE.finditer(question):
            for word in _TOKEN_RE.findall(match.group()[1:-1]):
                quoted_words.add(word.lower())
        for idx, token in enumerate(tokens):
            if taken[idx]:
                continue
            is_number = bool(re.fullmatch(r"\d+(\.\d+)?", token))
            is_quoted = token.lower() in quoted_words
            is_proper = (
                idx > 0
                and token[:1].isupper()
                and token.lower() not in STOPWORDS
                and any(c.isalpha() for c in token)
            )
            if is_number or is_quoted or is_proper:
                linking.mentions.append(
                    Mention(start=idx, end=idx + 1, kind="value", target=token)
                )
                taken[idx] = True

        linking.mentions.sort(key=lambda m: m.start)
        return linking

    def mask_question(self, question: str, mask: str = MASK_TOKEN) -> str:
        """Replace schema and value mentions with ``mask``.

        Consecutive masked tokens collapse into a single mask, following the
        paper's masked-question construction.
        """
        linking = self.link(question)
        masked_indices: Dict[int, bool] = {}
        for mention in linking.mentions:
            for i in range(mention.start, mention.end):
                masked_indices[i] = True
        out: List[str] = []
        for idx, token in enumerate(linking.tokens):
            if masked_indices.get(idx):
                if out and out[-1] == mask:
                    continue
                out.append(mask)
            else:
                out.append(token)
        return " ".join(out)


def _plural_variants(words: List[str]) -> List[Tuple[str, ...]]:
    """Singular/plural variants of the final word of a phrase."""
    last = words[-1]
    variants = []
    if last.endswith("ies"):
        variants.append(last[:-3] + "y")
    elif last.endswith("ses") or last.endswith("xes"):
        variants.append(last[:-2])
    elif last.endswith("s") and len(last) > 3:
        variants.append(last[:-1])
    elif last.endswith("y"):
        variants.append(last[:-1] + "ies")
    else:
        variants.append(last + "s")
    return [tuple(words[:-1] + [v]) for v in variants]
