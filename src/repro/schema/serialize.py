"""Textual schema serialisations used by the question representations.

Each function renders a :class:`~repro.schema.model.DatabaseSchema` in the
style one of the paper's five question representations expects:

* :func:`basic_schema` — ``Table singer, columns = [ id , name , age ]``
  (Basic Prompt, BS_P).
* :func:`text_schema` — ``singer: id, name, age`` lines (Text
  Representation, TR_P / Alpaca SFT, AS_P).
* :func:`openai_schema` — ``# singer ( id , name , age )`` comment lines
  (OpenAI Demonstration, OD_P).
* :func:`create_table_schema` — full ``CREATE TABLE`` DDL with primary and
  foreign keys (Code Representation, CR_P — the DAIL-SQL choice).
"""

from __future__ import annotations

from typing import List

from .model import DatabaseSchema, Table


def basic_schema(schema: DatabaseSchema) -> str:
    """One ``Table ..., columns = [...]`` line per table."""
    lines = []
    for table in schema.tables:
        columns = " , ".join(c.name for c in table.columns)
        lines.append(f"Table {table.name}, columns = [ {columns} ]")
    return "\n".join(lines)


def text_schema(schema: DatabaseSchema) -> str:
    """Compact ``table: col, col, ...`` lines."""
    return "\n".join(
        f"{table.name}: {', '.join(c.name for c in table.columns)}"
        for table in schema.tables
    )


def openai_schema(schema: DatabaseSchema) -> str:
    """Pound-sign commented table list, as in OpenAI's SQL-translate demo."""
    lines = ["### SQLite SQL tables, with their properties:", "#"]
    for table in schema.tables:
        columns = ", ".join(c.name for c in table.columns)
        lines.append(f"# {table.name} ( {columns} )")
    lines.append("#")
    return "\n".join(lines)


def create_table_schema(
    schema: DatabaseSchema,
    include_foreign_keys: bool = True,
    include_types: bool = True,
) -> str:
    """Full DDL: one ``CREATE TABLE`` statement per table.

    Args:
        include_foreign_keys: emit ``FOREIGN KEY`` clauses (the paper's FK
            ablation toggles this).
        include_types: emit column affinities; disabling gives the bare
            column-name style some prior work uses.
    """
    statements = [
        _create_table(schema, table, include_foreign_keys, include_types)
        for table in schema.tables
    ]
    return "\n".join(statements)


def _create_table(
    schema: DatabaseSchema,
    table: Table,
    include_foreign_keys: bool,
    include_types: bool,
) -> str:
    lines: List[str] = []
    for column in table.columns:
        if include_types:
            lines.append(f"    {column.name} {column.sqlite_type()}")
        else:
            lines.append(f"    {column.name}")
    if table.primary_key:
        lines.append(f"    PRIMARY KEY ({table.primary_key})")
    if include_foreign_keys:
        for fk in schema.foreign_keys:
            if fk.table.lower() == table.name.lower():
                lines.append(
                    f"    FOREIGN KEY ({fk.column}) "
                    f"REFERENCES {fk.ref_table}({fk.ref_column})"
                )
    body = ",\n".join(lines)
    return f"CREATE TABLE {table.name} (\n{body}\n);"


def foreign_key_text(schema: DatabaseSchema) -> str:
    """``Foreign_keys = [a.x = b.y, ...]`` line used by BS_P/TR_P ablations."""
    if not schema.foreign_keys:
        return "Foreign_keys = []"
    pairs = ", ".join(
        f"{fk.table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
        for fk in schema.foreign_keys
    )
    return f"Foreign_keys = [ {pairs} ]"


def serialize_schema(schema: DatabaseSchema, style: str, **kwargs) -> str:
    """Dispatch on a style name: ``basic`` / ``text`` / ``openai`` /
    ``create_table``.

    Raises:
        ValueError: for an unknown style.
    """
    if style == "basic":
        return basic_schema(schema)
    if style == "text":
        return text_schema(schema)
    if style == "openai":
        return openai_schema(schema)
    if style == "create_table":
        return create_table_schema(schema, **kwargs)
    raise ValueError(f"unknown schema serialisation style {style!r}")
