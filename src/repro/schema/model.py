"""Relational schema model in Spider's format.

A :class:`DatabaseSchema` mirrors one entry of Spider's ``tables.json``:
tables with original and natural-language names, typed columns, primary keys
and foreign keys.  It is the single schema object every other subsystem
(serialisers, linker, dataset generator, execution backend, prompt
representations) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SchemaError
from ..utils.text import snake_to_words

#: Column types used by Spider (SQLite affinity in parentheses).
COLUMN_TYPES = ("text", "number", "time", "boolean", "others")

_SQLITE_TYPE = {
    "text": "TEXT",
    "number": "REAL",
    "time": "TEXT",
    "boolean": "INTEGER",
    "others": "TEXT",
}


@dataclass(frozen=True)
class Column:
    """One column of a table.

    Attributes:
        name: original identifier, e.g. ``stadium_id``.
        ctype: one of :data:`COLUMN_TYPES`.
        natural_name: human-readable name (Spider's ``column_names``);
            derived from ``name`` when not given.
        is_integer: for ``number`` columns, whether values are integral
            (affects SQLite affinity and synthetic data generation).
    """

    name: str
    ctype: str = "text"
    natural_name: str = ""
    is_integer: bool = False

    def __post_init__(self):
        if self.ctype not in COLUMN_TYPES:
            raise SchemaError(f"unknown column type {self.ctype!r} for {self.name}")
        if not self.natural_name:
            object.__setattr__(
                self, "natural_name", " ".join(snake_to_words(self.name))
            )

    def sqlite_type(self) -> str:
        """SQLite column affinity for CREATE TABLE."""
        if self.ctype == "number" and self.is_integer:
            return "INTEGER"
        return _SQLITE_TYPE[self.ctype]


@dataclass(frozen=True)
class Table:
    """One table: name, columns, primary key.

    Attributes:
        name: original identifier, e.g. ``concert``.
        columns: ordered columns.
        primary_key: name of the PK column, or ``None``.
        natural_name: human-readable table name.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: Optional[str] = None
    natural_name: str = ""

    def __post_init__(self):
        if not self.columns:
            raise SchemaError(f"table {self.name} has no columns")
        names = [c.name.lower() for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name}")
        if self.primary_key is not None and self.primary_key.lower() not in names:
            raise SchemaError(
                f"primary key {self.primary_key} not a column of {self.name}"
            )
        if not self.natural_name:
            object.__setattr__(
                self, "natural_name", " ".join(snake_to_words(self.name))
            )

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name.

        Raises:
            SchemaError: if the column does not exist.
        """
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise SchemaError(f"no column {name} in table {self.name}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``table.column → ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def as_pair(self) -> Tuple[str, str]:
        return (f"{self.table}.{self.column}", f"{self.ref_table}.{self.ref_column}")


@dataclass(frozen=True)
class DatabaseSchema:
    """A full database schema (one Spider ``db_id``)."""

    db_id: str
    tables: Tuple[Table, ...]
    foreign_keys: Tuple[ForeignKey, ...] = ()

    def __post_init__(self):
        names = [t.name.lower() for t in self.tables]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate table names in {self.db_id}")
        for fk in self.foreign_keys:
            src = self.table(fk.table)
            dst = self.table(fk.ref_table)
            if not src.has_column(fk.column):
                raise SchemaError(f"dangling FK source {fk.table}.{fk.column}")
            if not dst.has_column(fk.ref_column):
                raise SchemaError(
                    f"dangling FK target {fk.ref_table}.{fk.ref_column}"
                )

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name.

        Raises:
            SchemaError: if the table does not exist.
        """
        lowered = name.lower()
        for table in self.tables:
            if table.name.lower() == lowered:
                return table
        raise SchemaError(f"no table {name} in database {self.db_id}")

    def has_table(self, name: str) -> bool:
        lowered = name.lower()
        return any(t.name.lower() == lowered for t in self.tables)

    def table_names(self) -> List[str]:
        return [t.name for t in self.tables]

    def all_columns(self) -> List[Tuple[str, Column]]:
        """All (table name, column) pairs in schema order."""
        return [(t.name, c) for t in self.tables for c in t.columns]

    def find_column(self, column: str) -> List[str]:
        """Names of all tables containing ``column``."""
        lowered = column.lower()
        return [t.name for t in self.tables if t.has_column(lowered)]

    def fk_graph(self) -> Dict[str, List[str]]:
        """Adjacency list over tables induced by foreign keys (undirected)."""
        graph: Dict[str, List[str]] = {t.name.lower(): [] for t in self.tables}
        for fk in self.foreign_keys:
            a, b = fk.table.lower(), fk.ref_table.lower()
            if b not in graph[a]:
                graph[a].append(b)
            if a not in graph[b]:
                graph[b].append(a)
        return graph

    def join_path(self, start: str, goal: str) -> Optional[List[str]]:
        """Shortest FK path between two tables (inclusive), or ``None``."""
        start, goal = start.lower(), goal.lower()
        if start == goal:
            return [start]
        graph = self.fk_graph()
        if start not in graph or goal not in graph:
            return None
        frontier = [[start]]
        seen = {start}
        while frontier:
            path = frontier.pop(0)
            for neighbour in graph[path[-1]]:
                if neighbour in seen:
                    continue
                next_path = path + [neighbour]
                if neighbour == goal:
                    return next_path
                seen.add(neighbour)
                frontier.append(next_path)
        return None

    def fk_between(self, a: str, b: str) -> Optional[ForeignKey]:
        """The FK connecting tables ``a`` and ``b`` in either direction."""
        a, b = a.lower(), b.lower()
        for fk in self.foreign_keys:
            if (fk.table.lower(), fk.ref_table.lower()) in ((a, b), (b, a)):
                return fk
        return None


def schema_from_spider_entry(entry: dict) -> DatabaseSchema:
    """Build a :class:`DatabaseSchema` from one Spider ``tables.json`` entry.

    Raises:
        SchemaError: on malformed entries.
    """
    try:
        table_names = entry["table_names_original"]
        natural_tables = entry.get("table_names", table_names)
        column_pairs = entry["column_names_original"]
        natural_columns = entry.get("column_names", column_pairs)
        column_types = entry["column_types"]
        primary_keys = set(entry.get("primary_keys", []))
        fk_pairs = entry.get("foreign_keys", [])
        db_id = entry["db_id"]
    except KeyError as exc:
        raise SchemaError(f"missing key in tables.json entry: {exc}") from exc

    per_table: Dict[int, List[Column]] = {i: [] for i in range(len(table_names))}
    pk_by_table: Dict[int, str] = {}
    for idx, (tidx, cname) in enumerate(column_pairs):
        if tidx < 0:  # the "*" pseudo-column
            continue
        ctype = column_types[idx] if idx < len(column_types) else "text"
        natural = natural_columns[idx][1] if idx < len(natural_columns) else ""
        is_integer = cname.lower().endswith("id") or ctype == "boolean"
        per_table[tidx].append(
            Column(name=cname, ctype=ctype, natural_name=natural,
                   is_integer=is_integer and ctype == "number")
        )
        if idx in primary_keys:
            pk_by_table[tidx] = cname

    tables = tuple(
        Table(
            name=table_names[i],
            columns=tuple(per_table[i]),
            primary_key=pk_by_table.get(i),
            natural_name=natural_tables[i] if i < len(natural_tables) else "",
        )
        for i in range(len(table_names))
    )

    fks = []
    for src_idx, dst_idx in fk_pairs:
        src_t, src_c = column_pairs[src_idx]
        dst_t, dst_c = column_pairs[dst_idx]
        fks.append(
            ForeignKey(
                table=table_names[src_t], column=src_c,
                ref_table=table_names[dst_t], ref_column=dst_c,
            )
        )
    return DatabaseSchema(db_id=db_id, tables=tables, foreign_keys=tuple(fks))


def schema_to_spider_entry(schema: DatabaseSchema) -> dict:
    """Serialise a schema back to the Spider ``tables.json`` format."""
    table_names = [t.name for t in schema.tables]
    natural_tables = [t.natural_name for t in schema.tables]
    column_pairs: List[List] = [[-1, "*"]]
    natural_columns: List[List] = [[-1, "*"]]
    column_types: List[str] = ["text"]
    index_of: Dict[Tuple[str, str], int] = {}
    primary_keys: List[int] = []
    for tidx, table in enumerate(schema.tables):
        for column in table.columns:
            index_of[(table.name.lower(), column.name.lower())] = len(column_pairs)
            if table.primary_key and column.name.lower() == table.primary_key.lower():
                primary_keys.append(len(column_pairs))
            column_pairs.append([tidx, column.name])
            natural_columns.append([tidx, column.natural_name])
            column_types.append(column.ctype)
    foreign_keys = [
        [
            index_of[(fk.table.lower(), fk.column.lower())],
            index_of[(fk.ref_table.lower(), fk.ref_column.lower())],
        ]
        for fk in schema.foreign_keys
    ]
    return {
        "db_id": schema.db_id,
        "table_names_original": table_names,
        "table_names": natural_tables,
        "column_names_original": column_pairs,
        "column_names": natural_columns,
        "column_types": column_types,
        "primary_keys": primary_keys,
        "foreign_keys": foreign_keys,
    }
