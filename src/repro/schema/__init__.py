"""Schema model, Spider-format conversion, serialisation, and linking."""

from .linker import MASK_TOKEN, Mention, SchemaLinker, SchemaLinking
from .model import (
    COLUMN_TYPES,
    Column,
    DatabaseSchema,
    ForeignKey,
    Table,
    schema_from_spider_entry,
    schema_to_spider_entry,
)
from .serialize import (
    basic_schema,
    create_table_schema,
    foreign_key_text,
    openai_schema,
    serialize_schema,
    text_schema,
)

__all__ = [
    "MASK_TOKEN", "Mention", "SchemaLinker", "SchemaLinking",
    "COLUMN_TYPES", "Column", "DatabaseSchema", "ForeignKey", "Table",
    "schema_from_spider_entry", "schema_to_spider_entry",
    "basic_schema", "create_table_schema", "foreign_key_text",
    "openai_schema", "serialize_schema", "text_schema",
]
