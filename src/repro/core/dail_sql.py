"""DAIL-SQL: the paper's integrated Text-to-SQL solution.

The pipeline combines the winners of each benchmark axis:

1. **Code Representation (CR_P)** with foreign keys — structure encoded as
   ``CREATE TABLE`` statements;
2. **DAIL Selection (DAIL_S)** — candidates ranked by masked-question
   similarity and gated on skeleton similarity to a *preliminary* predicted
   SQL (obtained from a zero-shot pass);
3. **DAIL Organization (DAIL_O)** — question–SQL pairs without cross-domain
   schema, packing more examples per token;
4. optional **self-consistency** — sample several generations and take the
   execution-majority answer.

``DailSQL`` is model-agnostic: it drives any
:class:`~repro.llm.interface.LLMClient`, including the simulated models the
benchmark ships and any real API client a downstream user plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dataset.spider import SpiderDataset
from ..db.sqlite_backend import Database
from ..llm.extract import extract_sql
from ..llm.interface import LLMClient
from ..prompt.builder import Prompt, PromptBuilder
from ..prompt.organization import ExampleBlock, get_organization
from ..prompt.representation import RepresentationOptions, get_representation
from ..schema.model import DatabaseSchema
from ..selection.strategies import DailSelection


@dataclass
class DailSQLResult:
    """Output of one DAIL-SQL invocation."""

    sql: str
    raw_output: str
    prompt: Prompt
    preliminary_sql: str
    n_examples: int
    samples: List[str] = field(default_factory=list)

    @property
    def prompt_tokens(self) -> int:
        return self.prompt.token_count


class DailSQL:
    """The integrated DAIL-SQL pipeline.

    Args:
        llm: any LLM client.
        candidates: cross-domain pool of (question, SQL) examples for
            in-context learning (e.g. the Spider train split).
        k: number of in-context examples requested.
        max_tokens: prompt budget; examples are dropped to fit.
        n_samples: >1 enables self-consistency (requires ``database``
            or a pool at query time for execution voting).
    """

    def __init__(
        self,
        llm: LLMClient,
        candidates: SpiderDataset,
        k: int = 5,
        max_tokens: Optional[int] = None,
        n_samples: int = 1,
    ):
        self.llm = llm
        self.candidates = candidates
        self.k = k
        self.n_samples = n_samples
        options = RepresentationOptions(foreign_keys=True)
        self._representation = get_representation("CR_P", options)
        self._zero_shot_builder = PromptBuilder(
            self._representation, get_organization("FI_O")
        )
        self._builder = PromptBuilder(
            self._representation, get_organization("DAIL_O"), max_tokens=max_tokens
        )
        self._selection = DailSelection(candidates)

    # -- pipeline stages ------------------------------------------------------

    def preliminary_sql(self, schema: DatabaseSchema, question: str) -> str:
        """Zero-shot prediction whose skeleton guides example selection."""
        prompt = self._zero_shot_builder.build(schema, question)
        result = self.llm.generate(prompt, sample_tag="preliminary")
        return extract_sql(result.text, prompt.response_prefix)

    def select_examples(
        self, schema: DatabaseSchema, question: str, preliminary: str
    ) -> List[ExampleBlock]:
        """DAIL selection against the candidate pool (prompt order)."""
        return self._selection.select(
            question, schema.db_id, self.k, predicted_sql=preliminary
        )

    def build_prompt(
        self,
        schema: DatabaseSchema,
        question: str,
        examples: List[ExampleBlock],
    ) -> Prompt:
        return self._builder.build(schema, question, examples)

    # -- entry points -------------------------------------------------------------

    def generate_sql(
        self,
        schema: DatabaseSchema,
        question: str,
        database: Optional[Database] = None,
    ) -> DailSQLResult:
        """Translate one question to SQL.

        ``database`` is only needed when ``n_samples > 1`` (execution-
        majority self-consistency); without it, the first sample wins.
        """
        preliminary = self.preliminary_sql(schema, question)
        examples = self.select_examples(schema, question, preliminary)
        prompt = self.build_prompt(schema, question, examples)

        samples: List[str] = []
        if self.n_samples <= 1 or database is None:
            result = self.llm.generate(prompt)
            sql = extract_sql(result.text, prompt.response_prefix)
            raw = result.text
            samples.append(sql)
        else:
            raw, sql, samples = self._self_consistency(prompt, database)

        return DailSQLResult(
            sql=sql,
            raw_output=raw,
            prompt=prompt,
            preliminary_sql=preliminary,
            n_examples=prompt.n_examples,
            samples=samples,
        )

    def _self_consistency(self, prompt: Prompt, database: Database):
        votes: Dict[str, List[str]] = {}
        samples: List[str] = []
        first_raw = ""
        for index in range(self.n_samples):
            result = self.llm.generate(prompt, sample_tag=f"sc-{index}")
            if index == 0:
                first_raw = result.text
            sql = extract_sql(result.text, prompt.response_prefix)
            samples.append(sql)
            rows = database.try_execute(sql)
            key = "<error>" if rows is None else repr(sorted(map(repr, rows)))
            votes.setdefault(key, []).append(sql)

        def vote_rank(item):
            key, sqls = item
            return (key != "<error>", len(sqls))

        _, best = max(votes.items(), key=vote_rank)
        return first_raw, best[0], samples
