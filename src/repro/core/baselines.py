"""Leaderboard baselines (paper Table 5).

Each entry approximates a published system *using this library's own
substrate* — the same prompt machinery, selection strategies and simulated
models — so the leaderboard comparison is apples-to-apples:

* **DAIL-SQL (GPT-4)** — CR_P + DAIL_S + DAIL_O, k=5.
* **DAIL-SQL + SC** — plus execution-majority self-consistency.
* **DIN-SQL (GPT-4)** — decomposed few-shot prompting with
  self-correction; modelled as TR_P + FI_O + QTS_S at k=5 (the
  decomposition and correction passes are folded into the full-
  information few-shot configuration).
* **C3 (GPT-3.5)** — calibrated zero-shot prompting with self-consistency;
  modelled as TR_P + FK + the no-explanation rule, several samples.
* **Few-shot / zero-shot GPT baselines** — the reference rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..eval.harness import RunConfig


@dataclass(frozen=True)
class LeaderboardEntry:
    """One system on the leaderboard: a config plus its sampling budget."""

    name: str
    config: RunConfig
    n_samples: int = 1


def leaderboard_entries() -> List[LeaderboardEntry]:
    """All systems of the leaderboard table, strongest first in the paper."""
    return [
        LeaderboardEntry(
            name="DAIL-SQL + SC (GPT-4)",
            config=RunConfig(
                model="gpt-4", representation="CR_P", organization="DAIL_O",
                selection="DAIL_S", k=5, foreign_keys=True,
                label="DAIL-SQL + SC (GPT-4)",
            ),
            n_samples=5,
        ),
        LeaderboardEntry(
            name="DAIL-SQL (GPT-4)",
            config=RunConfig(
                model="gpt-4", representation="CR_P", organization="DAIL_O",
                selection="DAIL_S", k=5, foreign_keys=True,
                label="DAIL-SQL (GPT-4)",
            ),
        ),
        LeaderboardEntry(
            name="DIN-SQL (GPT-4)",
            config=RunConfig(
                model="gpt-4", representation="TR_P", organization="FI_O",
                selection="QTS_S", k=5,
                label="DIN-SQL (GPT-4)",
            ),
        ),
        LeaderboardEntry(
            name="C3 (GPT-3.5-TURBO)",
            config=RunConfig(
                model="gpt-3.5-turbo", representation="TR_P",
                rule_implication=True, foreign_keys=True,
                label="C3 (GPT-3.5-TURBO)",
            ),
            n_samples=4,
        ),
        LeaderboardEntry(
            name="Few-shot GPT-4 (random)",
            config=RunConfig(
                model="gpt-4", representation="CR_P", organization="FI_O",
                selection="RD_S", k=5,
                label="Few-shot GPT-4 (random)",
            ),
        ),
        LeaderboardEntry(
            name="Zero-shot GPT-4",
            config=RunConfig(
                model="gpt-4", representation="OD_P",
                label="Zero-shot GPT-4",
            ),
        ),
        LeaderboardEntry(
            name="Zero-shot GPT-3.5-TURBO",
            config=RunConfig(
                model="gpt-3.5-turbo", representation="OD_P",
                label="Zero-shot GPT-3.5-TURBO",
            ),
        ),
    ]
