"""Execution-feedback self-correction (the DIN-SQL-style correction pass).

A thin wrapper around any pipeline: execute the predicted SQL; if it fails
(syntax error, unknown column, ...), re-prompt the model with the error
message appended and try again, up to ``max_attempts``.  This is the
self-correction mechanism DIN-SQL popularised and the paper discusses as a
complementary axis to prompt engineering.

The retry prompt embeds the failed SQL and the database error verbatim, so
a real LLM sees exactly what a production self-correction loop would send;
the simulated LLM sees a changed prompt and redraws its sample stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..db.sqlite_backend import Database
from ..errors import ExecutionError
from ..llm.extract import extract_sql
from ..llm.interface import LLMClient
from ..prompt.builder import Prompt
from ..tokenizer.counter import count_tokens


@dataclass
class CorrectionTrace:
    """What happened across correction attempts."""

    attempts: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    corrected: bool = False

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)


class SelfCorrector:
    """Retry loop: execute, on error re-prompt with the failure appended."""

    def __init__(self, llm: LLMClient, max_attempts: int = 2):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.llm = llm
        self.max_attempts = max_attempts

    def generate(self, prompt: Prompt, database: Database):
        """Generate SQL with up to ``max_attempts`` execution-guided retries.

        Returns:
            (sql, CorrectionTrace) — the final SQL (last attempt if none
            executed) and the attempt history.
        """
        trace = CorrectionTrace()
        current = prompt
        sql = ""
        for attempt in range(self.max_attempts):
            tag = "" if attempt == 0 else f"fix-{attempt}"
            result = self.llm.generate(current, sample_tag=tag)
            sql = extract_sql(result.text, current.response_prefix)
            trace.attempts.append(sql)
            error = self._execution_error(database, sql)
            if error is None:
                trace.corrected = attempt > 0
                return sql, trace
            trace.errors.append(error)
            current = self._retry_prompt(prompt, sql, error)
        return sql, trace

    @staticmethod
    def _execution_error(database: Database, sql: str) -> Optional[str]:
        try:
            database.execute(sql)
            return None
        except ExecutionError as exc:
            return str(exc)

    @staticmethod
    def _retry_prompt(prompt: Prompt, failed_sql: str, error: str) -> Prompt:
        """The original prompt plus the failure transcript."""
        feedback = (
            f"{prompt.text} {failed_sql}\n"
            f"-- The query above failed with: {error}\n"
            f"-- Fix the query.\n"
            "SELECT"
        )
        return replace(prompt, text=feedback, token_count=count_tokens(feedback))
