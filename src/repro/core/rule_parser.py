"""A rule-based semantic parser baseline (no LLM).

Before LLMs, Text-to-SQL baselines composed a query sketch from keyword
heuristics and schema linking.  This parser does exactly that, end-to-end:

1. link the question against the schema (tables / columns / values);
2. detect the *intent*: count, aggregate (avg/sum/min/max), or projection;
3. detect *filters*: comparison phrases ("greater than 30", "is "France""),
   containment ("contains the word"), attached to linked columns;
4. detect *ordering*: "highest/lowest/most", "top k" → ORDER BY + LIMIT;
5. pick the FROM table (the most-referenced one) and add a single FK join
   when a referenced column lives in a neighbouring table.

It emits a real AST and is evaluated with the same EX/EM harness as the
LLM systems — the leaderboard's "pre-LLM baseline" row, and a stress test
for the schema linker.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..schema.linker import SchemaLinker, SchemaLinking
from ..schema.model import DatabaseSchema, Table
from ..sql.ast_nodes import (
    AndCondition,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    Join,
    LikeCondition,
    Literal,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
    TableRef,
)
from ..sql.unparse import unparse

_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")

#: (trigger phrase, aggregate function) — checked in order.
_AGG_TRIGGERS = (
    ("how many different", "COUNT_DISTINCT"),
    ("how many distinct", "COUNT_DISTINCT"),
    ("how many", "COUNT"),
    ("count the", "COUNT"),
    ("number of", "COUNT"),
    ("total number", "COUNT"),
    ("average", "AVG"),
    ("total", "SUM"),
    ("sum of", "SUM"),
    ("minimum", "MIN"),
    ("lowest", "MIN"),
    ("maximum", "MAX"),
    ("highest", "MAX"),
)

_GT_PHRASES = ("greater than", "more than", "above", "over", "older than",
               "bigger than", "larger than")
_LT_PHRASES = ("less than", "fewer than", "below", "under", "younger than",
               "smaller than")


@dataclass
class ParseResult:
    """Outcome of the rule-based parser."""

    query: Optional[Query]
    confidence: float

    @property
    def sql(self) -> str:
        if self.query is None:
            return ""
        return unparse(self.query)


class RuleBasedParser:
    """Keyword + schema-linking semantic parser for one database."""

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self.linker = SchemaLinker(schema)

    # -- public ---------------------------------------------------------------

    def parse(self, question: str) -> ParseResult:
        """Translate a question; returns a low-confidence fallback when the
        heuristics find nothing to anchor on."""
        lowered = question.lower()
        linking = self.linker.link(question)

        table = self._main_table(linking)
        if table is None:
            return ParseResult(query=None, confidence=0.0)

        where, join_table, filter_columns = self._filters(lowered, linking, table)
        select_items, agg_used = self._select_items(
            lowered, linking, table, filter_columns
        )
        order_by, limit = self._ordering(lowered, linking, table, agg_used)

        from_clause = self._from_clause(table, join_table)
        core = SelectCore(
            items=tuple(select_items),
            from_clause=from_clause,
            where=where,
            order_by=order_by,
            limit=limit,
        )
        confidence = self._confidence(linking, agg_used, where is not None)
        return ParseResult(query=Query(core=core), confidence=confidence)

    # -- stages ------------------------------------------------------------------

    def _main_table(self, linking: SchemaLinking) -> Optional[Table]:
        """The most-referenced table; fall back to a column's table."""
        counts: Counter = Counter()
        for mention in linking.mentions:
            if mention.kind == "table":
                counts[mention.target.lower()] += 2
            elif mention.kind == "column":
                counts[mention.target.split(".", 1)[0].lower()] += 1
        if not counts:
            return None
        return self.schema.table(counts.most_common(1)[0][0])

    def _select_items(
        self,
        lowered: str,
        linking: SchemaLinking,
        table: Table,
        filter_columns: frozenset = frozenset(),
    ) -> Tuple[List[SelectItem], Optional[str]]:
        agg = None
        for phrase, func in _AGG_TRIGGERS:
            if phrase not in lowered:
                continue
            # "the 3 singers with the highest age" is a ranking, not an
            # aggregate — superlatives only aggregate in "what is the
            # highest ..." style openings.
            is_superlative = func in ("MIN", "MAX") and phrase in ("highest", "lowest")
            if is_superlative and not lowered.startswith(
                ("what is", "what are", "show the")
            ):
                continue
            agg = func
            break

        columns = [
            target.split(".", 1)[1]
            for target in sorted(
                {m.target for m in linking.mentions if m.kind == "column"}
            )
            if target.split(".", 1)[0].lower() == table.name.lower()
        ]
        # Columns consumed by WHERE are usually not projected ("singers
        # whose age > 30" asks for names, not ages) — drop them unless they
        # are all we have.
        projected = [c for c in columns if c.lower() not in filter_columns]
        if projected:
            columns = projected

        if agg in ("COUNT", "COUNT_DISTINCT"):
            if agg == "COUNT_DISTINCT" and columns:
                item = SelectItem(FuncCall(
                    "COUNT", ColumnRef(column=columns[0]), distinct=True))
            else:
                item = SelectItem(FuncCall("COUNT", ColumnRef(column="*")))
            return [item], agg

        if agg in ("AVG", "SUM", "MIN", "MAX"):
            numeric = self._numeric_column(columns, table)
            if numeric is not None:
                return [SelectItem(FuncCall(agg, ColumnRef(column=numeric)))], agg
            agg = None  # aggregate word without a numeric column: project

        if columns:
            return [SelectItem(ColumnRef(column=c)) for c in columns[:3]], agg
        # No column linked: project the human-readable name column or '*'.
        name_col = self._name_column(table)
        if name_col is not None:
            return [SelectItem(ColumnRef(column=name_col))], agg
        return [SelectItem(ColumnRef(column="*"))], agg

    def _filters(
        self, lowered: str, linking: SchemaLinking, table: Table
    ):
        """Comparison/LIKE filters from value mentions and trigger phrases.

        Returns (condition, join table, lower-cased filter column names).
        """
        conditions = []
        join_table: Optional[Table] = None
        filter_columns = set()
        seen = set()
        values = [m for m in linking.mentions if m.kind == "value"]
        table_starts = {
            m.start for m in linking.mentions if m.kind == "table"
        }

        for mention in values:
            if _NUMBER_RE.match(mention.target) and mention.end in table_starts:
                # "the 3 singers ..." — a count of rows, not a cell value;
                # the ordering stage consumes it as LIMIT.
                continue
            column, owner = self._column_for_value(mention, linking, table)
            if column is None:
                continue
            if owner is not None and owner.name.lower() != table.name.lower():
                join_table = owner
            ref = ColumnRef(
                column=column,
                table=owner.name if owner is not None
                and owner.name.lower() != table.name.lower() else None,
            )
            if _NUMBER_RE.match(mention.target):
                op = "="
                if any(p in lowered for p in _GT_PHRASES):
                    op = ">"
                elif any(p in lowered for p in _LT_PHRASES):
                    op = "<"
                condition = Comparison(op=op, left=ref,
                                       right=Literal(mention.target, "number"))
            elif "contain" in lowered:
                condition = LikeCondition(
                    expr=ref, pattern=Literal(f"%{mention.target}%", "string"))
            else:
                literal = self._string_value(mention.target, linking)
                condition = Comparison(op="=", left=ref,
                                       right=Literal(literal, "string"))
            key = (ref.key(), getattr(condition, "op", "like"),
                   str(getattr(condition, "right", getattr(condition, "pattern", ""))))
            if key in seen:
                continue
            seen.add(key)
            filter_columns.add(column.lower())
            conditions.append(condition)

        if not conditions:
            return None, join_table, frozenset(filter_columns)
        if len(conditions) == 1:
            return conditions[0], join_table, frozenset(filter_columns)
        return (AndCondition(operands=tuple(conditions[:2])), join_table,
                frozenset(filter_columns))

    def _ordering(self, lowered, linking, table, agg_used):
        """'top k' / 'highest X' → ORDER BY; skip when X was aggregated."""
        if agg_used in ("MAX", "MIN", "AVG", "SUM", "COUNT", "COUNT_DISTINCT"):
            return (), None
        numeric = self._numeric_column(
            [m.target.split(".", 1)[1] for m in linking.mentions
             if m.kind == "column"
             and m.target.split(".", 1)[0].lower() == table.name.lower()],
            table,
        )
        if numeric is None:
            return (), None

        # "in ascending/descending order (of X)": sort everything, no limit.
        if "ascending order" in lowered:
            return (OrderItem(ColumnRef(column=numeric), direction="ASC"),), None
        if "descending order" in lowered:
            return (OrderItem(ColumnRef(column=numeric), direction="DESC"),), None

        # "at least / at most" are comparison phrases, not ranking ones.
        cleaned = lowered.replace("at least", " ").replace("at most", " ")
        direction = None
        if any(p in cleaned for p in ("highest", "most", "largest", "top")):
            direction = "DESC"
        elif any(p in cleaned for p in ("lowest", "least", "smallest")):
            direction = "ASC"
        if direction is None:
            return (), None
        limit = 1
        match = re.search(r"\b(\d+)\b", cleaned)
        if match and int(match.group(1)) <= 20:
            limit = int(match.group(1))
        return (OrderItem(ColumnRef(column=numeric), direction=direction),), limit

    def _from_clause(self, table: Table, join_table: Optional[Table]) -> FromClause:
        source = TableRef(name=table.name)
        if join_table is None:
            return FromClause(source=source)
        fk = self.schema.fk_between(table.name, join_table.name)
        if fk is None:
            return FromClause(source=source)
        on = Comparison(
            op="=",
            left=ColumnRef(column=fk.column, table=fk.table),
            right=ColumnRef(column=fk.ref_column, table=fk.ref_table),
        )
        return FromClause(
            source=source,
            joins=(Join(source=TableRef(name=join_table.name), condition=on),),
        )

    # -- helpers ----------------------------------------------------------------

    def _numeric_column(self, preferred: List[str], table: Table) -> Optional[str]:
        for name in preferred:
            if table.has_column(name) and table.column(name).ctype == "number" \
                    and not name.lower().endswith("id"):
                return name
        for column in table.columns:
            if column.ctype == "number" and not column.name.lower().endswith("id"):
                return column.name
        return None

    def _name_column(self, table: Table) -> Optional[str]:
        for column in table.columns:
            if column.ctype == "text":
                return column.name
        return None

    def _column_for_value(self, mention, linking: SchemaLinking, table: Table):
        """Which column should a value filter attach to?

        The nearest column mention *preceding* the value wins ("whose
        country is France" attaches France to country, not to an earlier
        projection column); type compatibility filters the candidates.
        """
        value = mention.target
        want_number = bool(_NUMBER_RE.match(value))
        candidates = []
        for m in linking.mentions:
            if m.kind != "column":
                continue
            tname, cname = m.target.split(".", 1)
            owner = self.schema.table(tname)
            column = owner.column(cname)
            if want_number:
                type_ok = (column.ctype == "number"
                           and not cname.lower().endswith("id"))
            else:
                type_ok = column.ctype == "text"
            if type_ok:
                candidates.append((m.start, cname, owner))
        preceding = [c for c in candidates if c[0] < mention.start]
        chosen = max(preceding) if preceding else (min(candidates) if candidates else None)
        if chosen is not None:
            return chosen[1], chosen[2]
        if want_number:
            numeric = self._numeric_column([], table)
            return (numeric, table) if numeric else (None, None)
        text = self._name_column(table)
        return (text, table) if text else (None, None)

    def _string_value(self, mention: str, linking: SchemaLinking) -> str:
        """Expand a single-token value mention to the full quoted span."""
        quoted = re.findall(r'"([^"]+)"', linking.question)
        for span in quoted:
            if mention in span.split():
                return span
        # Multi-word proper nouns: join adjacent capitalised value mentions.
        values = [m for m in linking.mentions if m.kind == "value"]
        parts = []
        for m in values:
            if m.target[:1].isupper():
                parts.append((m.start, m.target))
        parts.sort()
        run = [t for _, t in parts]
        if mention in run and len(run) > 1:
            return " ".join(run)
        return mention

    def _confidence(self, linking: SchemaLinking, agg, has_filter) -> float:
        score = 0.3 + 0.4 * linking.coverage()
        if agg:
            score += 0.1
        if has_filter:
            score += 0.1
        return min(score, 1.0)
