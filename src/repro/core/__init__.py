"""The DAIL-SQL pipeline, baselines, rule-based parser, self-correction."""

from .baselines import LeaderboardEntry, leaderboard_entries
from .dail_sql import DailSQL, DailSQLResult
from .rule_parser import ParseResult, RuleBasedParser
from .self_correction import CorrectionTrace, SelfCorrector

__all__ = [
    "LeaderboardEntry", "leaderboard_entries", "DailSQL", "DailSQLResult",
    "ParseResult", "RuleBasedParser", "CorrectionTrace", "SelfCorrector",
]
