"""Extract SQL from raw model output.

Real LLM responses wrap SQL in code fences, prefix it with prose, or emit a
bare completion of the prompt's ``SELECT`` lead-in.  This module implements
the post-processing every LLM Text-to-SQL pipeline ships: find the query,
strip decoration, reattach the lead-in.
"""

from __future__ import annotations

import re

from ..analysis.safety import split_statements

_CODE_FENCE_RE = re.compile(r"```(?:sql)?\s*(.*?)```", re.DOTALL | re.IGNORECASE)
_SELECT_RE = re.compile(r"\bSELECT\b", re.IGNORECASE)


def extract_sql(text: str, response_prefix: str = "SELECT") -> str:
    """Pull the SQL query out of a model response.

    Strategy, in order: fenced code block → first SELECT onwards → treat
    the whole text as a completion of ``response_prefix``.

    Returns the best-effort SQL string (possibly invalid — evaluation
    scores that as a failure, it is not this function's job to repair it).
    """
    text = text.strip()
    if not text:
        return ""

    fence = _CODE_FENCE_RE.search(text)
    if fence:
        text = fence.group(1).strip()

    match = _SELECT_RE.search(text)
    if match:
        candidate = text[match.start():]
        return _truncate_at_boundary(candidate)

    if response_prefix:
        # The model completed the prompt's lead-in ("SELECT" was in the
        # prompt, the response starts mid-query).
        return _truncate_at_boundary(f"{response_prefix} {text}")
    return _truncate_at_boundary(text)


def _truncate_at_boundary(sql: str) -> str:
    """Cut the query at a statement boundary or an obvious prose line.

    The statement split is quote-aware (a semicolon inside a ``'...'``
    literal does not truncate).  When a fenced block carries several
    statements, only the first is returned — the static analyzer flags
    raw multi-statement output separately, but extraction must not hand
    ``sqlite3`` text it refuses outright.
    """
    statements = split_statements(sql)
    if statements:
        sql = statements[0]
    # Drop trailing prose that starts on a new line without SQL keywords.
    lines = sql.splitlines()
    kept = []
    for line in lines:
        stripped = line.strip()
        if kept and stripped and _looks_like_prose(stripped):
            break
        kept.append(line)
    return "\n".join(kept).strip()


_PROSE_STARTERS = (
    "this query", "the query", "explanation", "note:", "here", "it ",
    "i ", "above", "in this",
)


def _looks_like_prose(line: str) -> bool:
    lowered = line.lower()
    return any(lowered.startswith(p) for p in _PROSE_STARTERS)
