"""Task-specific supervised fine-tuning (simulated).

``finetune`` "trains" an open-source model on (question, SQL) pairs
rendered in one representation and returns a fine-tuned model whose
capability profile reflects the paper's two SFT findings:

* **representation matters** — the zero-shot boost is largest when the
  evaluation prompt uses the training representation, and simple
  representations (TR_P / AS_P) fine-tune better than instruction-heavy
  ones (OD_P);
* **in-context learning degrades** — after SFT, examples stop helping and
  mildly interfere (``icl_retention < 0``).

The training loop is simulated but deterministic: it produces a per-epoch
loss curve (a function of model scale, data size and representation), so
training-progress plumbing — checkpoints, reports, early stopping — can be
exercised by tests and examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..dataset.spider import SpiderDataset
from ..errors import ModelError
from ..prompt.representation import REPRESENTATION_IDS
from ..utils.rng import rng_from
from .profiles import ModelProfile, get_profile

#: How well each representation suits fine-tuning (paper: plain text
#: formats tune best; the comment-heavy OD_P worst).
SFT_REPRESENTATION_AFFINITY: Dict[str, float] = {
    "TR_P": 0.020,
    "AS_P": 0.018,
    "CR_P": 0.000,
    "BS_P": -0.012,
    "OD_P": -0.035,
}

#: Accuracy penalty when the evaluation representation differs from the
#: training one (the fine-tuned model expects its training format).
REPRESENTATION_MISMATCH_PENALTY = 0.11


@dataclass(frozen=True)
class SFTState:
    """Result of fine-tuning: the re-parameterised capability surface."""

    base_model: str
    representation_id: str
    dataset_size: int
    epochs: int
    trained_competence: float
    icl_retention: float
    tag: str

    def competence(self, eval_representation_id: str) -> float:
        """Zero-shot competence when evaluated with a given representation."""
        if eval_representation_id == self.representation_id:
            return self.trained_competence
        return max(0.02, self.trained_competence - REPRESENTATION_MISMATCH_PENALTY)


@dataclass
class TrainingReport:
    """Per-epoch record of the (simulated) SFT run."""

    model_id: str
    representation_id: str
    dataset_size: int
    epochs: int
    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def sft_gain(profile: ModelProfile, dataset_size: int, representation_id: str,
             epochs: int) -> float:
    """Zero-shot competence gain from fine-tuning.

    Grows with model scale (log) and data size (saturating), plus the
    representation's SFT affinity.
    """
    scale_term = 0.26 + 0.045 * math.log2(max(profile.scale_b, 1.0))
    size_factor = math.log1p(dataset_size) / math.log1p(3000)
    size_factor = min(size_factor, 1.0)
    epoch_factor = min(1.0, 0.55 + 0.15 * epochs)
    affinity = SFT_REPRESENTATION_AFFINITY.get(representation_id, 0.0)
    return scale_term * size_factor * epoch_factor + affinity


def finetune(
    model_id: str,
    train_dataset: SpiderDataset,
    representation_id: str,
    epochs: int = 3,
    seed: int = 0,
):
    """Fine-tune an open-source model on a dataset with one representation.

    Returns:
        (SimulatedLLM, TrainingReport) — the fine-tuned model (sharing the
        given oracle-less profile; attach to an oracle via
        :func:`attach_oracle`) and its training report.

    Raises:
        ModelError: for unknown models, OpenAI models (the paper only
            fine-tunes open-source LLMs), or unknown representations.
    """
    profile = get_profile(model_id)
    if profile.family == "openai":
        raise ModelError(
            f"{model_id} is an OpenAI model; the benchmark fine-tunes "
            "open-source LLMs only"
        )
    if representation_id not in REPRESENTATION_IDS:
        raise ModelError(f"unknown representation {representation_id!r}")
    if len(train_dataset) == 0:
        raise ModelError("cannot fine-tune on an empty dataset")

    gain = sft_gain(profile, len(train_dataset), representation_id, epochs)
    trained = min(0.90, profile.competence + gain)

    state = SFTState(
        base_model=model_id,
        representation_id=representation_id,
        dataset_size=len(train_dataset),
        epochs=epochs,
        trained_competence=trained,
        icl_retention=-0.035,
        tag=f"sft:{model_id}:{representation_id}:{len(train_dataset)}:{epochs}:{seed}",
    )
    report = _training_report(profile, state, seed)
    return state, report


def _training_report(
    profile: ModelProfile, state: SFTState, seed: int
) -> TrainingReport:
    """Deterministic, plausible-looking loss curve for the run."""
    rng = rng_from("sft-loss", state.tag, str(seed))
    report = TrainingReport(
        model_id=profile.model_id,
        representation_id=state.representation_id,
        dataset_size=state.dataset_size,
        epochs=state.epochs,
    )
    start = 2.4 - 0.05 * math.log2(max(profile.scale_b, 1.0))
    floor = 0.45 - 0.2 * state.trained_competence
    for epoch in range(1, state.epochs + 1):
        progress = 1 - math.exp(-0.9 * epoch)
        loss = start - (start - floor) * progress
        loss += rng.uniform(-0.02, 0.02)
        report.losses.append(round(loss, 4))
    return report
