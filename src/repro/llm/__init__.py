"""The (simulated) LLM substrate: profiles, generation, SFT, extraction."""

from .api_client import ApiLLMClient, RetryPolicy, TransportError
from .extract import extract_sql
from .finetune import (
    REPRESENTATION_MISMATCH_PENALTY,
    SFT_REPRESENTATION_AFFINITY,
    SFTState,
    TrainingReport,
    finetune,
    sft_gain,
)
from .interface import GenerationResult, LLMClient
from .oracle import GoldOracle
from .profiles import (
    ALL_MODELS,
    OPEN_SOURCE_MODELS,
    OPENAI_MODELS,
    ModelProfile,
    get_profile,
    list_models,
)
from .simulated import SimulatedLLM, make_llm

__all__ = [
    "ApiLLMClient", "RetryPolicy", "TransportError", "extract_sql", "REPRESENTATION_MISMATCH_PENALTY",
    "SFT_REPRESENTATION_AFFINITY", "SFTState", "TrainingReport", "finetune",
    "sft_gain", "GenerationResult", "LLMClient", "GoldOracle", "ALL_MODELS",
    "OPEN_SOURCE_MODELS", "OPENAI_MODELS", "ModelProfile", "get_profile",
    "list_models", "SimulatedLLM", "make_llm",
]
