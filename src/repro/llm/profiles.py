"""Model capability profiles for the simulated LLM substrate.

Each profile parameterises how a model responds to prompt features:
base competence, per-representation affinity, in-context-learning gain,
context burden, and alignment.  The numbers are calibrated so the benchmark
reproduces the *shape* of the paper's results (orderings, gaps, crossovers)
— see DESIGN.md §2 for the substitution rationale and EXPERIMENTS.md for
paper-vs-measured numbers.

Profiles are data, not behaviour: the generation model lives in
:mod:`repro.llm.simulated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ModelError

#: Model ids used across the benchmark (paper's evaluation set).
OPENAI_MODELS = ("gpt-4", "gpt-3.5-turbo", "text-davinci-003")
OPEN_SOURCE_MODELS = (
    "llama-7b", "llama-13b", "llama-33b", "falcon-40b",
    "vicuna-7b", "vicuna-13b", "vicuna-33b",
)
ALL_MODELS = OPENAI_MODELS + OPEN_SOURCE_MODELS


@dataclass(frozen=True)
class ModelProfile:
    """Capability parameters of one model.

    Attributes:
        model_id: canonical id, e.g. ``gpt-4``.
        family: ``openai`` / ``llama`` / ``vicuna`` / ``falcon``.
        scale_b: parameter count in billions (drives open-source scaling).
        alignment: 0–1 instruction-following quality (RLHF'd models high;
            raw base models low).  Scales robustness to prompt style and
            the benefit of the "no explanation" rule.
        competence: 0–1 core Text-to-SQL ability with the model's best
            representation, zero-shot.
        representation_affinity: additive adjustment per representation id
            (how far each representation sits from the model's best).
        icl_gain: maximum accuracy headroom good examples can add.
        context_burden: accuracy lost per 1k prompt tokens (weak models
            degrade as prompts grow — the paper's inverted-U).
        chattiness: tendency to wrap answers in prose when no
            "no explanation" rule is present.
        max_context: context window in tokens.
    """

    model_id: str
    family: str
    scale_b: float
    alignment: float
    competence: float
    representation_affinity: Dict[str, float]
    icl_gain: float
    context_burden: float
    chattiness: float
    max_context: int

    def affinity(self, rep_id: str) -> float:
        return self.representation_affinity.get(rep_id, -0.08)


def _openai_affinity(od: float, cr: float, tr: float, bs: float, asf: float):
    # ODX_P is OD_P with the pound-sign markers stripped — the paper's
    # introduction anecdote: chat models lean on the comment structure to
    # separate prompt from response, so removing "#" costs them most.
    return {"OD_P": od, "CR_P": cr, "TR_P": tr, "BS_P": bs, "AS_P": asf,
            "ODX_P": od - 0.06}


_PROFILES: Dict[str, ModelProfile] = {}


def _register(profile: ModelProfile) -> None:
    _PROFILES[profile.model_id] = profile


# --- OpenAI family ----------------------------------------------------------
# Calibration targets (paper, zero-shot EX on Spider dev):
#   GPT-4 peaks with OD_P (~72%); GPT-3.5-TURBO prefers OD_P (~70%) and
#   drops hard on BS_P; TEXT-DAVINCI-003 prefers CR_P/OD_P (~60%); all gain
#   from few-shot examples, GPT-4 the most headroom with DAIL selection.

_register(ModelProfile(
    model_id="gpt-4",
    family="openai",
    scale_b=1760.0,
    alignment=0.95,
    competence=0.70,
    representation_affinity=_openai_affinity(
        od=0.00, cr=-0.005, tr=-0.02, bs=-0.03, asf=-0.04),
    icl_gain=0.155,
    context_burden=0.002,
    chattiness=0.25,
    max_context=8192,
))

_register(ModelProfile(
    model_id="gpt-3.5-turbo",
    family="openai",
    scale_b=175.0,
    alignment=0.90,
    competence=0.66,
    representation_affinity={
        **_openai_affinity(od=0.00, cr=-0.04, tr=-0.02, bs=-0.12, asf=-0.07),
        "ODX_P": -0.10,
    },
    icl_gain=0.10,
    context_burden=0.004,
    chattiness=0.45,
    max_context=4096,
))

_register(ModelProfile(
    model_id="text-davinci-003",
    family="openai",
    scale_b=175.0,
    alignment=0.75,
    competence=0.60,
    representation_affinity=_openai_affinity(
        od=-0.01, cr=0.00, tr=-0.03, bs=-0.07, asf=-0.06),
    icl_gain=0.09,
    context_burden=0.005,
    chattiness=0.20,
    max_context=4096,
))

# --- Open-source family -------------------------------------------------------
# Calibration targets (paper, Table 6): accuracy grows with scale; Vicuna
# (aligned) beats LLaMA at equal scale; Falcon-40B underperforms its size;
# all are far below OpenAI models in-context.


def _open_source(model_id: str, family: str, scale_b: float, alignment: float,
                 competence: float, icl_gain: float) -> ModelProfile:
    return ModelProfile(
        model_id=model_id,
        family=family,
        scale_b=scale_b,
        alignment=alignment,
        competence=competence,
        representation_affinity=_openai_affinity(
            od=-0.02, cr=0.00, tr=-0.02, bs=-0.05, asf=-0.01),
        icl_gain=icl_gain,
        context_burden=0.012,
        chattiness=0.55 if alignment < 0.5 else 0.35,
        max_context=2048,
    )


_register(_open_source("llama-7b", "llama", 7, 0.25, 0.10, 0.05))
_register(_open_source("llama-13b", "llama", 13, 0.28, 0.17, 0.06))
_register(_open_source("llama-33b", "llama", 33, 0.32, 0.27, 0.08))
_register(_open_source("falcon-40b", "falcon", 40, 0.30, 0.14, 0.05))
_register(_open_source("vicuna-7b", "vicuna", 7, 0.55, 0.18, 0.06))
_register(_open_source("vicuna-13b", "vicuna", 13, 0.60, 0.27, 0.08))
_register(_open_source("vicuna-33b", "vicuna", 33, 0.65, 0.40, 0.10))


def get_profile(model_id: str) -> ModelProfile:
    """Look up a model profile.

    Raises:
        ModelError: for unknown model ids.
    """
    try:
        return _PROFILES[model_id]
    except KeyError as exc:
        raise ModelError(
            f"unknown model {model_id!r}; known models: {sorted(_PROFILES)}"
        ) from exc


def list_models() -> Tuple[str, ...]:
    """All registered model ids."""
    return tuple(sorted(_PROFILES))
