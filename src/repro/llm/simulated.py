"""The simulated LLM: an outcome model over prompt features.

``SimulatedLLM.generate`` turns a :class:`~repro.prompt.builder.Prompt`
into a response in three steps:

1. **Feature extraction** — measured with the library's *real* machinery:
   query hardness (Spider rubric), schema-linking coverage (the linker),
   example relevance (masked-question token overlap + SQL-skeleton
   similarity), organization/representation ids, token counts, the FK and
   rule flags.
2. **Outcome** — a success probability combines the features with the
   model's capability profile; a deterministic draw (SHA-256 of model id,
   SFT tag, prompt text and sample tag) decides success.
3. **Response synthesis** — gold SQL (optionally wrapped in chat prose /
   code fences) on success; a realistic perturbation of it on failure.

Determinism: same model + same prompt text + same sample tag ⇒ same output,
across processes and platforms.  Changing *anything* in the prompt (one
pound sign included) changes the draw — mirroring real prompt sensitivity.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..dataset.spider import Example
from ..prompt.builder import Prompt
from ..prompt.organization import ExampleBlock
from ..schema.linker import SchemaLinker
from ..sql.hardness import hardness
from ..sql.parser import try_parse
from ..sql.skeleton import skeleton_similarity
from ..tokenizer.counter import count_tokens
from ..utils.rng import rng_from, stable_unit
from ..utils.text import content_words
from .interface import GenerationResult, sequential_batch
from .oracle import GoldOracle
from .perturb import equivalent_rewrite, perturb_sql
from .profiles import ModelProfile, get_profile

#: Per-hardness additive shift (harder queries are less likely correct).
_HARDNESS_SHIFT = {"easy": 0.14, "medium": 0.03, "hard": -0.13, "extra": -0.26}

#: Floor/ceiling on success probability.
_P_FLOOR = 0.02
_P_CEIL = 0.96

#: Relevance below which an example counts as a distraction.
_DISTRACTION_THRESHOLD = 0.12


class SimulatedLLM:
    """Deterministic LLM stand-in driven by a capability profile.

    ``latency_s`` injects a per-generation sleep emulating a remote API's
    round-trip — it never changes *what* is generated, only how long it
    takes, so the parallel engine's I/O-overlap behaviour can be
    exercised and benchmarked against the simulated backend.
    """

    def __init__(
        self,
        profile: ModelProfile,
        oracle: GoldOracle,
        sft_state: Optional["SFTState"] = None,
        latency_s: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.profile = profile
        self.oracle = oracle
        self.sft_state = sft_state
        self.latency_s = latency_s
        #: Injectable like ApiLLMClient's: resilience drills run
        #: latency-bearing configs without paying wall-clock for them.
        self.sleep = sleep
        #: Optional MetricsRegistry; the engine attaches the run's registry
        #: so request latency and token histograms land in run metrics.
        self.metrics = None
        self._linkers: Dict[str, SchemaLinker] = {}
        self._fingerprint: Optional[str] = None

    @property
    def model_id(self) -> str:
        if self.sft_state is not None:
            return f"{self.profile.model_id}+sft[{self.sft_state.representation_id}]"
        return self.profile.model_id

    def fingerprint(self) -> str:
        """Stable digest of everything that determines this model's output.

        Cached generations are keyed by (this fingerprint, prompt text,
        sample tag).  The oracle's content is included — two corpora can
        pose byte-identical prompts with different gold answers — while
        ``latency_s`` is deliberately excluded: it changes how long a
        generation takes, never what is generated, so warm caches work
        across latency settings.
        """
        if self._fingerprint is None:
            from ..cache.keys import stable_digest

            sft_parts = ()
            if self.sft_state is not None:
                sft_parts = (
                    self.sft_state.tag,
                    repr(self.sft_state.trained_competence),
                    repr(self.sft_state.icl_retention),
                )
            self._fingerprint = stable_digest(
                "simulated-llm",
                self.model_id,
                list(sft_parts),
                self.oracle.fingerprint(),
            )
        return self._fingerprint

    # -- outcome model ---------------------------------------------------------

    def success_probability(self, prompt: Prompt) -> float:
        """P(correct SQL | prompt, model) — the heart of the simulation.

        Exposed publicly so tests and ablation benches can assert the
        direction of each feature's effect.
        """
        gold = self.oracle.lookup(prompt.db_id, prompt.question)
        if gold is None:
            return _P_FLOOR

        p = self._base_competence(prompt)
        p += self.profile.affinity(prompt.representation_id) * self._affinity_scale()
        p += _HARDNESS_SHIFT.get(gold.hardness, 0.0)
        p += self._foreign_key_term(prompt, gold)
        p += self._rule_term(prompt)
        p += self._linking_term(prompt)
        p += self._example_term(prompt, gold)
        p += self._context_term(prompt)
        p += self._feedback_term(prompt)
        return min(max(p, _P_FLOOR), _P_CEIL)

    def _base_competence(self, prompt: Prompt) -> float:
        if self.sft_state is not None:
            return self.sft_state.competence(prompt.representation_id)
        return self.profile.competence

    def _affinity_scale(self) -> float:
        # After task-specific SFT the model has learned the task format, so
        # prompt-style preferences matter less.
        return 0.4 if self.sft_state is not None else 1.0

    def _foreign_key_term(self, prompt: Prompt, gold: Example) -> float:
        query = try_parse(gold.query)
        needs_join = False
        if query is not None:
            for _, core in query.flatten_set_ops():
                if core.from_clause is not None and len(core.from_clause.sources()) > 1:
                    needs_join = True
        if prompt.includes_foreign_keys:
            return 0.055 if needs_join else -0.005
        return -0.035 if needs_join else 0.0

    def _rule_term(self, prompt: Prompt) -> float:
        # The "no explanation" rule stops chatty models from wrapping the
        # SQL in prose that post-processing sometimes mangles.  A fine-
        # tuned model emits bare SQL by construction, so the rule is moot.
        if self.sft_state is not None:
            return 0.0
        if prompt.includes_rule:
            return 0.012 + 0.05 * self.profile.chattiness
        return -0.02 * self.profile.chattiness

    def _linking_term(self, prompt: Prompt) -> float:
        linker = self._linkers.get(prompt.db_id)
        if linker is None:
            linker = SchemaLinker(prompt.schema)
            self._linkers[prompt.db_id] = linker
        coverage = linker.link(prompt.question).coverage()
        # Centred at the typical Spider coverage; low-coverage questions
        # (Spider-Realistic) are harder for everyone, and hardest for
        # weakly aligned models.
        return (coverage - 0.55) * 0.28 * (1.30 - self.profile.alignment)

    def _example_term(self, prompt: Prompt, gold: Example) -> float:
        if not prompt.examples:
            return 0.0
        icl_gain = self.profile.icl_gain
        if self.sft_state is not None:
            # Fine-tuning collapses the model onto the zero-shot format:
            # in-context examples stop helping and mildly interfere.
            return self.sft_state.icl_retention * len(prompt.examples) / 4.0

        relevance_sum = 0.0
        distractions = 0
        for block in prompt.examples:
            relevance = self._example_relevance(block, prompt.question, gold)
            relevance_sum += relevance
            if relevance < _DISTRACTION_THRESHOLD:
                distractions += 1

        organization_factor = self._organization_factor(prompt.organization_id)
        term = icl_gain * (1 - math.exp(-0.55 * relevance_sum)) * organization_factor
        term -= 0.022 * (1.0 - self.profile.alignment) * distractions
        return term

    def _example_relevance(
        self, block: ExampleBlock, question: str, gold: Example
    ) -> float:
        question_overlap = _token_overlap(block.question, question)
        structure = skeleton_similarity(block.sql, gold.query)
        return 0.25 * question_overlap + 0.75 * structure

    def _organization_factor(self, organization_id: str) -> float:
        if organization_id == "FI_O":
            return 1.0
        if organization_id == "DAIL_O":
            # Strong models recover the question→SQL mapping without the
            # example schemas (factor ≈ 1); weak models lose some signal.
            return min(0.62 + 0.40 * self.profile.alignment, 0.99)
        if organization_id == "SQL_O":
            return 0.45
        return 0.8

    def _context_term(self, prompt: Prompt) -> float:
        tokens = prompt.token_count
        if tokens > self.profile.max_context:
            return -0.30  # truncated prompt: catastrophic
        return -self.profile.context_burden * tokens / 1000.0

    def _feedback_term(self, prompt: Prompt) -> float:
        """Uplift from an execution-feedback turn in the prompt.

        Diagnosed failures are strong hints (ExeSQL-style feedback
        works); more-aligned models exploit them better.  Keyed on the
        feedback sentinel line so ordinary prompts are unaffected.
        """
        from ..repair.feedback import FEEDBACK_MARKER

        if FEEDBACK_MARKER not in prompt.text:
            return 0.0
        return 0.10 + 0.10 * self.profile.alignment

    # -- generation ---------------------------------------------------------------

    def generate(self, prompt: Prompt, sample_tag: str = "") -> GenerationResult:
        """Produce a response; deterministic in (model, prompt, tag)."""
        if self.metrics is None:
            return self._generate(prompt, sample_tag)
        start = time.perf_counter()
        result = self._generate(prompt, sample_tag)
        from ..obs.metrics import (
            M_LLM_COMPLETION_TOKENS,
            M_LLM_PROMPT_TOKENS,
            M_LLM_REQUEST,
            TOKEN_BUCKETS,
        )

        labels = {"model": self.model_id}
        self.metrics.observe(M_LLM_REQUEST, time.perf_counter() - start, labels)
        self.metrics.observe(M_LLM_PROMPT_TOKENS, result.prompt_tokens,
                             labels, buckets=TOKEN_BUCKETS)
        self.metrics.observe(M_LLM_COMPLETION_TOKENS, result.completion_tokens,
                             labels, buckets=TOKEN_BUCKETS)
        return result

    def _generate(self, prompt: Prompt, sample_tag: str = "") -> GenerationResult:
        if self.latency_s > 0:
            self.sleep(self.latency_s)
        gold = self.oracle.lookup(prompt.db_id, prompt.question)
        sft_tag = self.sft_state.tag if self.sft_state is not None else ""
        if gold is None:
            text = self._fallback_sql(prompt)
            return self._result(prompt, text)

        p = self.success_probability(prompt)
        # Item-response design: every question has one latent difficulty
        # percentile (a deterministic draw keyed on the gold query alone),
        # and a generation succeeds when the model-and-prompt ability p
        # exceeds it.  Comparisons between models, prompt strategies and
        # question paraphrases (Spider-Realistic) are therefore paired per
        # item — hard questions are hard for every model, and a strategy
        # that raises p by 2 points wins ~2% of items, exactly the
        # common-random-numbers property the paper's dev-set grids have.
        base_draw = stable_unit("difficulty", prompt.db_id, gold.query)
        if sample_tag:
            # Repeated samples of the same prompt are highly correlated
            # (temperature sampling wiggles the answer, it does not redraw
            # the model's understanding) — this keeps self-consistency
            # gains small and realistic.
            jitter = stable_unit(
                self.profile.model_id, sft_tag, "sample", prompt.text, sample_tag
            )
            draw = 0.92 * base_draw + 0.08 * jitter
        else:
            draw = base_draw
        # The failure-edit stream is also keyed per item (not per model),
        # so accidental execution matches among wrong answers pair across
        # models too; severity still differs per model, so weaker models
        # make more destructive edits.
        rng = rng_from("response", prompt.db_id, gold.query, sample_tag)

        if draw < p:
            sql = gold.query
            # Correct answers are routinely phrased differently from the
            # gold annotation (COUNT(pk) for COUNT(*), >= n+1 for > n, ...):
            # execution-equal, exact-match-different — the standard EM<EX gap.
            rewrite_rate = 0.45 + 0.25 * (1.0 - self.profile.alignment)
            if rng.random() < rewrite_rate:
                sql = equivalent_rewrite(sql, prompt.schema, rng)
        else:
            severity = min(1.0, max(0.3, (draw - p) * 1.8 + 0.3))
            sql = perturb_sql(gold.query, prompt.schema, rng, severity)

        text = self._decorate(sql, prompt, rng)
        return self._result(prompt, text)

    def _decorate(self, sql: str, prompt: Prompt, rng) -> str:
        """Wrap the SQL the way a real model response would look."""
        if prompt.includes_rule or self.sft_state is not None:
            return sql
        roll = rng.random()
        if roll < self.profile.chattiness * 0.5:
            return f"Here is the SQL query:\n```sql\n{sql}\n```"
        if roll < self.profile.chattiness * 0.7:
            return (
                f"{sql}\n"
                "This query answers the question using the tables above."
            )
        return sql

    def generate_batch(
        self, prompts: Sequence[Prompt], sample_tag: str = ""
    ) -> List[GenerationResult]:
        """Sequential reference implementation of the batch protocol."""
        return sequential_batch(self, prompts, sample_tag=sample_tag)

    def _fallback_sql(self, prompt: Prompt) -> str:
        """When the oracle has no entry, behave like a guessing model."""
        tables = prompt.schema.table_names()
        if not tables:
            return "SELECT 1"
        return f"SELECT * FROM {tables[0]}"

    def _result(self, prompt: Prompt, text: str) -> GenerationResult:
        return GenerationResult(
            text=text,
            prompt_tokens=prompt.token_count,
            completion_tokens=count_tokens(text),
            model_id=self.model_id,
        )


def _token_overlap(a: str, b: str) -> float:
    """Jaccard overlap of content words — cheap question similarity."""
    wa, wb = set(content_words(a)), set(content_words(b))
    if not wa or not wb:
        return 0.0
    return len(wa & wb) / len(wa | wb)


def make_llm(
    model_id: str,
    oracle: GoldOracle,
    sft_state: Optional["SFTState"] = None,
    latency_s: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
) -> SimulatedLLM:
    """Convenience constructor from a model id.

    Raises:
        ModelError: for unknown model ids.
    """
    return SimulatedLLM(
        get_profile(model_id), oracle, sft_state=sft_state,
        latency_s=latency_s, sleep=sleep,
    )


# Imported at the bottom to avoid a cycle (finetune builds SimulatedLLMs).
from .finetune import SFTState  # noqa: E402  (re-export for typing)
