"""Realistic SQL error modes for the simulated LLM.

When the outcome model decides a generation fails, the output should look
like the *kinds* of mistakes real LLMs make — wrong column, dropped
predicate, wrong aggregate, off-by-a-bit literal, flipped sort order,
hallucinated table, or outright malformed text — rather than random noise.
These perturbations feed the evaluator exactly the failure distribution the
paper's error analysis describes, including near-misses where execution
accuracy and exact match disagree.
"""

from __future__ import annotations

import random
import re
from dataclasses import replace as dc_replace
from typing import Callable, List, Optional

from ..schema.model import DatabaseSchema
from ..sql.ast_nodes import (
    AndCondition,
    ColumnRef,
    Comparison,
    FromClause,
    FuncCall,
    Join,
    Literal,
    OrderItem,
    Query,
    SelectCore,
    SelectItem,
)
from ..sql.parser import try_parse
from ..sql.unparse import unparse

#: Aggregate swap map (COUNT↔SUM-style confusions).
_AGG_SWAP = {"COUNT": "SUM", "SUM": "AVG", "AVG": "SUM", "MAX": "MIN", "MIN": "MAX"}


def _with_core(query: Query, core: SelectCore) -> Query:
    return Query(core=core, set_op=query.set_op, set_query=query.set_query)


def _wrong_column(query: Query, schema: DatabaseSchema, rng: random.Random
                  ) -> Optional[Query]:
    """Replace the first projected column with a sibling column."""
    core = query.core
    if not core.items:
        return None
    item = core.items[0]
    if not isinstance(item.expr, ColumnRef) or item.expr.column == "*":
        return None
    tables = core.from_clause.table_names() if core.from_clause else ()
    if not tables:
        return None
    table_name = item.expr.table or tables[0]
    if not schema.has_table(table_name):
        return None
    table = schema.table(table_name)
    others = [
        c.name for c in table.columns
        if c.name.lower() != item.expr.column.lower()
    ]
    if not others:
        return None
    new_col = rng.choice(others)
    new_item = SelectItem(
        expr=ColumnRef(column=new_col, table=item.expr.table), alias=item.alias
    )
    return _with_core(query, dc_replace(core, items=(new_item,) + core.items[1:]))


def _drop_condition(query: Query, schema: DatabaseSchema, rng: random.Random
                    ) -> Optional[Query]:
    """Drop one conjunct of the WHERE clause (or the whole clause)."""
    core = query.core
    if core.where is None:
        return None
    if isinstance(core.where, AndCondition) and len(core.where.operands) > 1:
        keep = list(core.where.operands)
        keep.pop(rng.randrange(len(keep)))
        new_where = keep[0] if len(keep) == 1 else AndCondition(tuple(keep))
        return _with_core(query, dc_replace(core, where=new_where))
    return _with_core(query, dc_replace(core, where=None))


def _wrong_aggregate(query: Query, schema: DatabaseSchema, rng: random.Random
                     ) -> Optional[Query]:
    core = query.core
    for index, item in enumerate(core.items):
        if isinstance(item.expr, FuncCall) and item.expr.name in _AGG_SWAP:
            swapped = FuncCall(
                name=_AGG_SWAP[item.expr.name],
                arg=item.expr.arg,
                distinct=item.expr.distinct,
            )
            items = list(core.items)
            items[index] = SelectItem(expr=swapped, alias=item.alias)
            return _with_core(query, dc_replace(core, items=tuple(items)))
    return None


def _wrong_literal(query: Query, schema: DatabaseSchema, rng: random.Random
                   ) -> Optional[Query]:
    """Corrupt the first literal in WHERE.

    Numbers shift by a third of their magnitude (enough to change the
    matched rows on realistic data); strings are mangled so equality
    filters stop matching.
    """
    core = query.core
    if core.where is None:
        return None

    changed = {"done": False}

    def fix(cond):
        if changed["done"]:
            return cond
        if isinstance(cond, Comparison) and isinstance(cond.right, Literal):
            lit = cond.right
            if lit.kind == "number":
                value = lit.python_value()
                magnitude = max(abs(value) * 0.34, 2)
                delta = magnitude if rng.random() < 0.5 else -magnitude
                shifted = value + delta
                if isinstance(value, int):
                    shifted = int(shifted)
                new = Literal(str(shifted), "number")
            elif lit.kind == "string" and len(lit.value) > 2:
                # A hallucinated value: scramble enough that it misses.
                new = Literal(lit.value[: len(lit.value) // 2] or "x", "string")
            else:
                return cond
            changed["done"] = True
            return Comparison(op=cond.op, left=cond.left, right=new)
        if isinstance(cond, AndCondition):
            return AndCondition(tuple(fix(op) for op in cond.operands))
        return cond

    new_where = fix(core.where)
    if not changed["done"]:
        return None
    return _with_core(query, dc_replace(core, where=new_where))


def _flip_order(query: Query, schema: DatabaseSchema, rng: random.Random
                ) -> Optional[Query]:
    core = query.core
    if not core.order_by:
        return None
    first = core.order_by[0]
    flipped = OrderItem(
        expr=first.expr,
        direction="ASC" if first.direction == "DESC" else "DESC",
    )
    return _with_core(
        query, dc_replace(core, order_by=(flipped,) + core.order_by[1:])
    )


def _drop_limit(query: Query, schema: DatabaseSchema, rng: random.Random
                ) -> Optional[Query]:
    core = query.core
    if core.limit is None:
        return None
    return _with_core(query, dc_replace(core, limit=None))


def _toggle_distinct(query: Query, schema: DatabaseSchema, rng: random.Random
                     ) -> Optional[Query]:
    """Near-miss: flip DISTINCT — often execution-equal, never EM-equal."""
    core = query.core
    return _with_core(query, dc_replace(core, distinct=not core.distinct))


def _wrong_join_key(query: Query, schema: DatabaseSchema, rng: random.Random
                    ) -> Optional[Query]:
    """Join on a wrong column — the classic multi-table failure."""
    core = query.core
    if core.from_clause is None or not core.from_clause.joins:
        return None
    joins = list(core.from_clause.joins)
    index = rng.randrange(len(joins))
    join = joins[index]
    if not isinstance(join.condition, Comparison):
        return None
    left = join.condition.left
    if not isinstance(left, ColumnRef) or left.table is None:
        return None
    if not schema.has_table(left.table):
        return None
    table = schema.table(left.table)
    others = [c.name for c in table.columns if c.name.lower() != left.column.lower()]
    if not others:
        return None
    new_condition = Comparison(
        op=join.condition.op,
        left=ColumnRef(column=rng.choice(others), table=left.table),
        right=join.condition.right,
    )
    joins[index] = Join(source=join.source, condition=new_condition,
                        kind=join.kind)
    new_from = FromClause(source=core.from_clause.source, joins=tuple(joins))
    return _with_core(query, dc_replace(core, from_clause=new_from))


def _drop_group_by(query: Query, schema: DatabaseSchema, rng: random.Random
                   ) -> Optional[Query]:
    """Forget the GROUP BY (and its HAVING) — aggregates collapse."""
    core = query.core
    if not core.group_by:
        return None
    return _with_core(query, dc_replace(core, group_by=(), having=None))


def _hallucinate_table(query: Query, schema: DatabaseSchema, rng: random.Random
                       ) -> Optional[Query]:
    """Reference a column that does not exist — executes with an error."""
    core = query.core
    if not core.items:
        return None
    fake = ColumnRef(column=f"{core.items[0].expr.column}_value"
                     if isinstance(core.items[0].expr, ColumnRef) else "value")
    items = (SelectItem(expr=fake),) + core.items[1:]
    return _with_core(query, dc_replace(core, items=items))


#: Near perturbations: plausible answers, still executable.
NEAR_MODES: List[Callable] = [
    _wrong_literal, _flip_order, _drop_limit, _wrong_aggregate,
]

#: Far perturbations: structural mistakes.
FAR_MODES: List[Callable] = [
    _wrong_column, _drop_condition, _wrong_aggregate, _hallucinate_table,
    _wrong_join_key, _drop_group_by,
]


def perturb_sql(
    gold_sql: str,
    schema: DatabaseSchema,
    rng: random.Random,
    severity: float,
) -> str:
    """Produce a realistically wrong SQL for a failed generation.

    Args:
        gold_sql: the gold query (the mistake is an edit of it).
        schema: schema of the target database.
        rng: seeded RNG (deterministic per model/prompt).
        severity: 0–1; low severity prefers near-misses, high severity
            structural errors and occasionally malformed output.

    Returns:
        SQL text (possibly invalid — that's a real failure mode too).
    """
    query = try_parse(gold_sql)
    if query is None:
        return gold_sql  # cannot edit what we cannot parse

    if severity > 0.85 and rng.random() < 0.3:
        # Malformed output: truncate mid-query.
        words = gold_sql.split()
        cut = max(2, int(len(words) * rng.uniform(0.3, 0.8)))
        return " ".join(words[:cut])

    modes = list(NEAR_MODES if severity < 0.35 else FAR_MODES + NEAR_MODES)
    rng.shuffle(modes)
    n_edits = 1 if severity < 0.7 else rng.choice([1, 2])
    edited = query
    applied = 0
    for mode in modes:
        if applied >= n_edits:
            break
        candidate = mode(edited, schema, rng)
        if candidate is not None and candidate != edited:
            edited = candidate
            applied += 1
    if applied == 0:
        # Fall back: structural edit first, DISTINCT flip as last resort.
        for mode in FAR_MODES:
            candidate = mode(query, schema, rng)
            if candidate is not None and candidate != query:
                return unparse(candidate)
        edited = _toggle_distinct(query, schema, rng) or query
    return unparse(edited)


# ---------------------------------------------------------------------------
# Execution-preserving rewrites (success-path surface variation)
# ---------------------------------------------------------------------------


def _rewrite_count_star(query: Query, schema: DatabaseSchema, rng: random.Random
                        ) -> Optional[Query]:
    """``COUNT(*)`` → ``COUNT(pk)`` — same result on non-null keys."""
    core = query.core
    if core.from_clause is None:
        return None
    tables = core.from_clause.table_names()
    if len(tables) != 1 or not schema.has_table(tables[0]):
        return None
    pk = schema.table(tables[0]).primary_key
    if pk is None:
        return None
    for index, item in enumerate(core.items):
        expr = item.expr
        if (
            isinstance(expr, FuncCall) and expr.name == "COUNT"
            and isinstance(expr.arg, ColumnRef) and expr.arg.column == "*"
            and not expr.distinct
        ):
            items = list(core.items)
            items[index] = SelectItem(
                expr=FuncCall("COUNT", ColumnRef(column=pk)), alias=item.alias
            )
            return _with_core(query, dc_replace(core, items=tuple(items)))
    return None


def _rewrite_integer_bound(query: Query, schema: DatabaseSchema,
                           rng: random.Random) -> Optional[Query]:
    """``x > 5`` → ``x >= 6`` (integers) — identical rows, different text."""
    core = query.core
    if core.where is None:
        return None
    changed = {"done": False}

    def is_integer_column(expr) -> bool:
        if not isinstance(expr, ColumnRef) or expr.column == "*":
            return False
        tables = core.from_clause.table_names() if core.from_clause else ()
        names = [expr.table] if expr.table else list(tables)
        for name in names:
            if name and schema.has_table(name):
                table = schema.table(name)
                if table.has_column(expr.column):
                    column = table.column(expr.column)
                    return column.ctype == "number" and column.is_integer
        return False

    def fix(cond):
        if changed["done"]:
            return cond
        if (
            isinstance(cond, Comparison)
            and cond.op in (">", "<")
            and isinstance(cond.right, Literal)
            and cond.right.kind == "number"
            and "." not in cond.right.value
            and is_integer_column(cond.left)
        ):
            value = int(cond.right.value)
            changed["done"] = True
            if cond.op == ">":
                return Comparison(op=">=", left=cond.left,
                                  right=Literal(str(value + 1), "number"))
            return Comparison(op="<=", left=cond.left,
                              right=Literal(str(value - 1), "number"))
        if isinstance(cond, AndCondition):
            return AndCondition(tuple(fix(op) for op in cond.operands))
        return cond

    new_where = fix(core.where)
    if not changed["done"]:
        return None
    return _with_core(query, dc_replace(core, where=new_where))


def _rewrite_flip_comparison(query: Query, schema: DatabaseSchema,
                             rng: random.Random) -> Optional[Query]:
    """``col > 5`` → ``5 < col`` — identical rows, different component key.

    Real models routinely phrase comparisons the other way round; the
    Spider exact-set-match keys on the textual component, so this is the
    most common benign EM miss.
    """
    _FLIP = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "=", "!=": "!="}
    core = query.core
    if core.where is None:
        return None
    changed = {"done": False}

    def fix(cond):
        if changed["done"]:
            return cond
        if (
            isinstance(cond, Comparison)
            and isinstance(cond.right, Literal)
            and not isinstance(cond.left, Literal)
        ):
            changed["done"] = True
            return Comparison(op=_FLIP[cond.op], left=cond.right,
                              right=cond.left)
        if isinstance(cond, AndCondition):
            return AndCondition(tuple(fix(op) for op in cond.operands))
        return cond

    new_where = fix(core.where)
    if not changed["done"]:
        return None
    return _with_core(query, dc_replace(core, where=new_where))


#: Surface rewrites that keep execution results identical but break
#: exact-set-match — how a real model answers correctly "in its own words".
EQUIVALENT_REWRITES: List[Callable] = [
    _rewrite_count_star, _rewrite_integer_bound, _rewrite_flip_comparison,
]

_SINGLE_QUOTED_RE = re.compile(r"'([^'\"]+)'")

#: Share of correct answers with a string literal that come back
#: double-quoted (Spider's SQLite convention — fine on the reference
#: backend, an identifier on engines with standard quoting).
_QUOTE_SWAP_RATE = 0.35


def _swap_quote_style(sql: str, schema: DatabaseSchema) -> Optional[str]:
    """Spider-convention quote swap: the first single-quoted string
    literal becomes double-quoted.  Execution-equivalent on SQLite,
    which falls back to a string literal for unknown identifiers — the
    classic text-to-SQL portability bug on engines where double quotes
    always mean identifiers.  Skipped when the literal collides with a
    schema name (SQLite would resolve it as a column)."""
    match = _SINGLE_QUOTED_RE.search(sql)
    if match is None:
        return None
    body = match.group(1)
    names = {t.lower() for t in schema.table_names()}
    for table_name in schema.table_names():
        names.update(c.name.lower() for c in schema.table(table_name).columns)
    if body.lower() in names:
        return None
    return f'{sql[:match.start()]}"{body}"{sql[match.end():]}'


def equivalent_rewrite(
    gold_sql: str, schema: DatabaseSchema, rng: random.Random
) -> str:
    """Rewrite a correct query into an execution-equivalent variant.

    Returns the gold SQL unchanged when no rewrite applies.
    """
    query = try_parse(gold_sql)
    if query is None:
        return gold_sql
    if rng.random() < _QUOTE_SWAP_RATE:
        swapped = _swap_quote_style(gold_sql, schema)
        if swapped is not None:
            return swapped
    modes = list(EQUIVALENT_REWRITES)
    rng.shuffle(modes)
    for mode in modes:
        candidate = mode(query, schema, rng)
        if candidate is not None:
            return unparse(candidate)
    return gold_sql
