"""Gold-answer oracle for the simulated LLM.

The simulator is an *outcome model*: it decides whether a generation
succeeds from prompt features and, on success, must emit the gold SQL (on
failure, a realistic perturbation of it).  The oracle is the lookup from
(db_id, question) to that gold example.  It is strictly part of the
simulation substrate — no benchmark component other than
:class:`~repro.llm.simulated.SimulatedLLM` may consult it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..dataset.spider import Example, SpiderDataset
from ..schema.model import DatabaseSchema
from ..utils.text import normalize_whitespace


class GoldOracle:
    """Maps (db_id, question) to the gold example and its schema."""

    def __init__(self, *datasets: SpiderDataset):
        self._examples: Dict[Tuple[str, str], Example] = {}
        self._schemas: Dict[str, DatabaseSchema] = {}
        for dataset in datasets:
            self.add_dataset(dataset)

    def add_dataset(self, dataset: SpiderDataset) -> None:
        for example in dataset:
            key = self._key(example.db_id, example.question)
            self._examples[key] = example
        self._schemas.update(dataset.schemas)

    @staticmethod
    def _key(db_id: str, question: str) -> Tuple[str, str]:
        return (db_id, normalize_whitespace(question).lower())

    def lookup(self, db_id: str, question: str) -> Optional[Example]:
        """The gold example for a question, or ``None`` if unknown."""
        return self._examples.get(self._key(db_id, question))

    def fingerprint(self) -> str:
        """Stable content digest of the oracle's (question → gold) map.

        Part of the simulated LLM's fingerprint: two oracles built from
        different corpora may answer the same prompt differently, so
        cached generations must not be shared between them.  Recomputed
        per call because :meth:`add_dataset` can extend the oracle; the
        map is small and the callers memoise.
        """
        from ..cache.keys import digest_texts

        def parts():
            for (db_id, question) in sorted(self._examples):
                yield db_id
                yield question
                yield self._examples[(db_id, question)].query

        return digest_texts(parts())

    def schema(self, db_id: str) -> Optional[DatabaseSchema]:
        return self._schemas.get(db_id)

    def __len__(self) -> int:
        return len(self._examples)
