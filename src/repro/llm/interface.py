"""LLM client interface and generation result types.

Every model in the benchmark — simulated OpenAI models, simulated
open-source models, fine-tuned variants — implements :class:`LLMClient`.
Swapping in a real API client requires only this interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, runtime_checkable

from ..prompt.builder import Prompt


@dataclass(frozen=True)
class GenerationResult:
    """One model response.

    Attributes:
        text: raw model output (may include prose, code fences, ...).
        prompt_tokens: tokens consumed by the prompt.
        completion_tokens: tokens in the response.
        model_id: which model produced it.
    """

    text: str
    prompt_tokens: int
    completion_tokens: int
    model_id: str

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@runtime_checkable
class LLMClient(Protocol):
    """Anything that can answer a prompt."""

    model_id: str

    def generate(self, prompt: Prompt, sample_tag: str = "") -> GenerationResult:
        """Answer a prompt.  ``sample_tag`` distinguishes repeated samples
        of the same prompt (self-consistency)."""
        ...

    def generate_batch(
        self, prompts: Sequence[Prompt], sample_tag: str = ""
    ) -> List[GenerationResult]:
        """Answer several prompts, preserving input order.

        The reference implementations loop over :meth:`generate`; real
        backends can override with one batched request (or request
        coalescing) without touching any caller.
        """
        ...


def sequential_batch(
    client: "LLMClient", prompts: Sequence[Prompt], sample_tag: str = ""
) -> List[GenerationResult]:
    """Default ``generate_batch``: one :meth:`LLMClient.generate` per
    prompt, in order.  Shared by the simulated and API clients."""
    return [client.generate(prompt, sample_tag=sample_tag) for prompt in prompts]


def client_fingerprint(client: "LLMClient") -> str:
    """Stable identity of a client for artifact-cache keys.

    Clients that define ``fingerprint()`` (the simulated and API
    clients both do) control their own cache identity; anything else
    falls back to its ``model_id``, which is correct whenever one model
    id maps to one behaviour — the convention of this library.
    """
    fingerprint = getattr(client, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint()
    return f"model:{client.model_id}"
