"""OpenAI-compatible API client adapter.

The benchmark's default models are simulated, but every pipeline in this
library drives the :class:`~repro.llm.interface.LLMClient` protocol — so a
real deployment only needs this adapter.  ``ApiLLMClient`` formats a
:class:`~repro.prompt.builder.Prompt` as a chat-completions request,
handles retries with exponential backoff and rate-limit waits, and returns
a :class:`~repro.llm.interface.GenerationResult`.

The HTTP layer is an injected *transport* callable, so the adapter is
fully testable offline (and swappable for any OpenAI-compatible server).
A transport takes the request dict and returns the response dict, raising
:class:`TransportError` on failures.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import CircuitOpenError, ModelError
from ..prompt.builder import Prompt
from ..tokenizer.counter import count_tokens
from ..utils.rng import stable_unit
from .interface import GenerationResult, sequential_batch

#: request dict → response dict.
Transport = Callable[[Dict], Dict]


def sample_seed(sample_tag: str) -> int:
    """Stable per-sample request seed (crc32; PYTHONHASHSEED-independent)."""
    return zlib.crc32(sample_tag.encode("utf-8")) % 2**31


class TransportError(Exception):
    """Raised by transports on network/API failure.

    Attributes:
        retryable: whether the adapter should retry.
        retry_after: optional server-suggested wait in seconds.
    """

    def __init__(self, message: str, retryable: bool = True,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.retryable = retryable
        self.retry_after = retry_after


@dataclass
class RetryPolicy:
    """Backoff configuration for the adapter.

    ``jitter`` spreads concurrent retries: after a shared rate-limit,
    workers that backed off in lockstep would all retry at the same
    instant and trip the limit again.  The jitter is *deterministic* —
    seeded from (salt, attempt) via a stable hash — so a given request
    always waits the same amount, and distinct requests decorrelate.
    """

    max_attempts: int = 4
    base_delay: float = 1.0
    max_delay: float = 30.0
    backoff: float = 2.0
    #: Max fractional increase of a delay (0.25 → up to +25%); 0 disables.
    jitter: float = 0.25

    def delay(self, attempt: int, salt: str = "") -> float:
        """Backoff before retry ``attempt`` (0-based), jitter included."""
        base = min(self.base_delay * self.backoff ** attempt, self.max_delay)
        if self.jitter <= 0:
            return base
        unit = stable_unit("retry-jitter", salt, str(attempt))
        return min(base * (1.0 + self.jitter * unit), self.max_delay)


@dataclass
class ApiLLMClient:
    """Drives any OpenAI-compatible chat-completions endpoint.

    Args:
        model_id: remote model name (also reported in results).
        transport: request → response callable (the HTTP layer).
        system_message: optional system prompt prepended to every request.
        temperature: sampling temperature; self-consistency callers pass
            sample tags, which map to distinct request seeds.
        retry: retry/backoff policy.
        sleep: injectable sleep function (tests pass a stub).
        breaker: optional shared
            :class:`~repro.resilience.breaker.CircuitBreaker`.  When it
            is open, :meth:`generate` raises
            :class:`~repro.errors.CircuitOpenError` *before* touching
            the transport — one fast errored record per example instead
            of a full retry/backoff cycle against a dead backend.
        deadline_s: per-call wall-clock budget.  The adapter refuses to
            start a backoff sleep that cannot complete inside the
            budget and fails the call instead.
    """

    model_id: str
    transport: Transport
    system_message: str = (
        "You are a Text-to-SQL assistant. Answer with a single SQL query."
    )
    temperature: float = 0.0
    max_completion_tokens: int = 512
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    sleep: Callable[[float], None] = time.sleep
    #: Optional MetricsRegistry (attached by the engine, never fingerprinted):
    #: request latency, retry counts and token histograms.
    metrics: Optional[object] = None
    #: Optional CircuitBreaker shared across clients of one backend.
    breaker: Optional[object] = None
    #: Optional per-call wall-clock deadline in seconds.
    deadline_s: Optional[float] = None

    # -- request construction ------------------------------------------------

    def build_request(self, prompt: Prompt, sample_tag: str = "") -> Dict:
        """The chat-completions request body for a prompt."""
        messages: List[Dict[str, str]] = []
        if self.system_message:
            messages.append({"role": "system", "content": self.system_message})
        messages.append({"role": "user", "content": prompt.text})
        request: Dict = {
            "model": self.model_id,
            "messages": messages,
            "temperature": self.temperature if sample_tag else 0.0,
            "max_tokens": self.max_completion_tokens,
        }
        if sample_tag:
            # Distinct deterministic seeds per sample for self-consistency.
            # crc32 (not hash()) so the seed is stable across processes
            # regardless of PYTHONHASHSEED — parallel workers and resumed
            # runs must send identical requests for identical samples.
            request["seed"] = sample_seed(sample_tag)
            request["temperature"] = max(self.temperature, 0.7)
        return request

    @staticmethod
    def parse_response(response: Dict) -> str:
        """Extract the completion text.

        Raises:
            ModelError: on malformed responses.
        """
        try:
            return response["choices"][0]["message"]["content"]
        except (KeyError, IndexError, TypeError) as exc:
            raise ModelError(f"malformed API response: {response!r}") from exc

    # -- LLMClient -------------------------------------------------------------

    def fingerprint(self) -> str:
        """Cache identity: everything that shapes the request content.

        Retry policy and transport are excluded — they decide *how* the
        request is delivered, not what is asked.  Remote model drift is
        out of scope (pin model snapshots server-side, or clear the
        cache when the endpoint changes).
        """
        from ..cache.keys import stable_digest

        return stable_digest(
            "api-llm",
            self.model_id,
            self.system_message,
            repr(self.temperature),
            self.max_completion_tokens,
        )

    def generate(self, prompt: Prompt, sample_tag: str = "") -> GenerationResult:
        """Send the request, retrying on transient failures.

        Raises:
            CircuitOpenError: immediately, when the attached circuit
                breaker is open (fail-fast; no transport call is made).
            ModelError: when retries are exhausted, the failure is not
                retryable, or the call deadline is exceeded.
        """
        if self.breaker is not None and not self.breaker.allow():
            self._set_circuit_gauge()
            raise CircuitOpenError(
                f"circuit open for {self.model_id}: backend failed "
                f"repeatedly, failing fast"
            )
        request = self.build_request(prompt, sample_tag)
        # Per-request jitter salt: concurrent workers retrying different
        # prompts back off by different (but reproducible) amounts.
        salt = f"{self.model_id}|{sample_tag}|{zlib.crc32(prompt.text.encode('utf-8')):08x}"
        last_error: Optional[TransportError] = None
        start = time.perf_counter()
        for attempt in range(self.retry.max_attempts):
            try:
                response = self.transport(request)
            except TransportError as exc:
                last_error = exc
                if not exc.retryable:
                    raise ModelError(f"API call failed: {exc}") from exc
                self._record_breaker(success=False)
                if attempt + 1 < self.retry.max_attempts:
                    self._count_retry()
                    wait = exc.retry_after
                    if wait is None:
                        wait = self.retry.delay(attempt, salt=salt)
                    else:
                        # A hostile/buggy Retry-After header must not be
                        # able to stall a worker beyond the policy cap.
                        wait = min(wait, self.retry.max_delay)
                    if self.deadline_s is not None and (
                        time.perf_counter() - start + wait > self.deadline_s
                    ):
                        raise ModelError(
                            f"API call deadline ({self.deadline_s:.1f}s) "
                            f"exceeded after {attempt + 1} attempts: {exc}"
                        ) from exc
                    self.sleep(wait)
                continue
            text = self.parse_response(response)
            usage = response.get("usage", {})
            result = GenerationResult(
                text=text,
                prompt_tokens=usage.get("prompt_tokens", prompt.token_count),
                completion_tokens=usage.get(
                    "completion_tokens", count_tokens(text)
                ),
                model_id=self.model_id,
            )
            self._record_breaker(success=True)
            self._observe_success(result, time.perf_counter() - start)
            return result
        raise ModelError(
            f"API call failed after {self.retry.max_attempts} attempts: "
            f"{last_error}"
        )

    def _record_breaker(self, success: bool) -> None:
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
        self._set_circuit_gauge()

    def _set_circuit_gauge(self) -> None:
        if self.metrics is None or self.breaker is None:
            return
        from ..obs.metrics import M_LLM_CIRCUIT

        self.metrics.gauge_set(
            M_LLM_CIRCUIT, self.breaker.state_code, {"model": self.model_id}
        )

    def _count_retry(self) -> None:
        if self.metrics is None:
            return
        from ..obs.metrics import M_LLM_RETRIES

        self.metrics.counter_add(M_LLM_RETRIES, 1, {"model": self.model_id})

    def _observe_success(self, result: GenerationResult,
                         elapsed: float) -> None:
        if self.metrics is None:
            return
        from ..obs.metrics import (
            M_LLM_COMPLETION_TOKENS,
            M_LLM_PROMPT_TOKENS,
            M_LLM_REQUEST,
            TOKEN_BUCKETS,
        )

        labels = {"model": self.model_id}
        self.metrics.observe(M_LLM_REQUEST, elapsed, labels)
        self.metrics.observe(M_LLM_PROMPT_TOKENS, result.prompt_tokens,
                             labels, buckets=TOKEN_BUCKETS)
        self.metrics.observe(M_LLM_COMPLETION_TOKENS,
                             result.completion_tokens, labels,
                             buckets=TOKEN_BUCKETS)

    def generate_batch(
        self, prompts: Sequence[Prompt], sample_tag: str = ""
    ) -> List[GenerationResult]:
        """Sequential default; point at a batch endpoint to override."""
        return sequential_batch(self, prompts, sample_tag=sample_tag)
