"""Deterministic text embeddings for example selection."""

from .tfidf import TfidfEmbedder, cosine, hash_feature, top_k

__all__ = ["TfidfEmbedder", "cosine", "hash_feature", "top_k"]
