"""TF-IDF text embeddings (the similarity substrate for example selection).

The paper embeds questions with a pretrained sentence encoder; offline we
substitute a deterministic TF-IDF model over word unigrams, bigrams and
character trigrams.  What selection strategies need from the embedder is
only that *similar questions land close in the vector space*, which TF-IDF
n-gram cosine preserves.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence

import numpy as np

from ..utils.text import char_ngrams, word_tokenize

Vector = Dict[int, float]


def _features(text: str) -> List[str]:
    """Word unigrams + bigrams + char trigrams of a text."""
    words = word_tokenize(text)
    feats = list(words)
    feats.extend(f"{a}_{b}" for a, b in zip(words, words[1:]))
    feats.extend(char_ngrams(text, 3))
    return feats


class TfidfEmbedder:
    """Fit on a corpus, then embed texts as L2-normalised sparse vectors.

    Unseen features at transform time fall back to the median IDF, so
    queries from new domains still embed reasonably.
    """

    def __init__(self):
        self._idf: Dict[str, float] = {}
        self._index: Dict[str, int] = {}
        self._default_idf: float = 1.0
        self._fitted = False

    def fit(self, texts: Sequence[str]) -> "TfidfEmbedder":
        """Learn vocabulary and IDF weights from ``texts``."""
        doc_freq: Counter = Counter()
        for text in texts:
            doc_freq.update(set(_features(text)))
        n_docs = max(len(texts), 1)
        self._idf = {
            feat: math.log((1 + n_docs) / (1 + df)) + 1.0
            for feat, df in doc_freq.items()
        }
        self._index = {feat: i for i, feat in enumerate(sorted(self._idf))}
        if self._idf:
            values = sorted(self._idf.values())
            self._default_idf = values[len(values) // 2]
        self._fitted = True
        return self

    def transform(self, text: str) -> Vector:
        """Embed one text. Unknown features hash onto extended indices."""
        counts = Counter(_features(text))
        vector: Vector = {}
        base = len(self._index)
        for feat, count in counts.items():
            idf = self._idf.get(feat, self._default_idf)
            index = self._index.get(feat)
            if index is None:
                index = base + (hash_feature(feat) % 4096)
            weight = (1 + math.log(count)) * idf
            vector[index] = vector.get(index, 0.0) + weight
        norm = math.sqrt(sum(w * w for w in vector.values()))
        if norm > 0:
            vector = {i: w / norm for i, w in vector.items()}
        return vector

    def fit_transform(self, texts: Sequence[str]) -> List[Vector]:
        self.fit(texts)
        return [self.transform(t) for t in texts]

    @property
    def fitted(self) -> bool:
        return self._fitted


def hash_feature(feature: str) -> int:
    """Stable non-negative hash of a feature string."""
    value = 2166136261
    for ch in feature.encode("utf-8"):
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value


def cosine(a: Vector, b: Vector) -> float:
    """Cosine similarity of two sparse vectors (already normalised → dot)."""
    if len(a) > len(b):
        a, b = b, a
    return sum(w * b.get(i, 0.0) for i, w in a.items())


def top_k(query: Vector, candidates: Sequence[Vector], k: int) -> List[int]:
    """Indices of the ``k`` candidates most similar to ``query`` (desc)."""
    scores = np.array([cosine(query, cand) for cand in candidates])
    order = np.argsort(-scores, kind="stable")
    return [int(i) for i in order[:k]]
