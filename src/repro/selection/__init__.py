"""Example-selection strategies for few-shot prompting."""

from .strategies import (
    DAIL_SKELETON_THRESHOLD,
    SELECTION_IDS,
    DailSelection,
    MaskedQuestionSimilaritySelection,
    QuestionSimilaritySelection,
    RandomSelection,
    SelectionStrategy,
    get_selection,
)

__all__ = [
    "DAIL_SKELETON_THRESHOLD", "SELECTION_IDS", "DailSelection",
    "MaskedQuestionSimilaritySelection", "QuestionSimilaritySelection",
    "RandomSelection", "SelectionStrategy", "get_selection",
]
