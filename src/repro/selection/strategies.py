"""Example selection strategies (paper Section 3.2 / Table 3).

Given a target question, pick ``k`` in-context examples from a cross-domain
candidate pool:

* ``RD_S`` — Random: seeded uniform sample (the baseline).
* ``QTS_S`` — Question Similarity: nearest neighbours of the *raw*
  question in embedding space.
* ``MQS_S`` — Masked Question Similarity: nearest neighbours after
  domain-specific words are masked out, so matching is on intent.
* ``DAIL_S`` — DAIL Selection: masked-question similarity *and* skeleton
  similarity between each candidate's gold SQL and a preliminary predicted
  SQL for the target — the paper's verified hypothesis that LLMs learn the
  question→SQL-skeleton mapping.

All strategies return examples in **prompt order** (least similar first,
most similar adjacent to the target question).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dataset.spider import Example, SpiderDataset
from ..embed.tfidf import TfidfEmbedder, cosine
from ..errors import PromptError
from ..prompt.organization import ExampleBlock
from ..sql.skeleton import skeleton_similarity
from ..utils.rng import rng_from

#: Canonical selection ids in paper order.
SELECTION_IDS = ("RD_S", "QTS_S", "MQS_S", "DAIL_S")

#: Skeleton-similarity threshold for DAIL_S's structural pre-filter.
DAIL_SKELETON_THRESHOLD = 0.35


class SelectionStrategy:
    """Base class; subclasses implement :meth:`rank`."""

    id: str = ""
    name: str = ""

    def __init__(self, candidates: SpiderDataset, seed: int = 0):
        self.candidates = candidates
        self.seed = seed

    def rank(
        self,
        question: str,
        db_id: str,
        predicted_sql: Optional[str] = None,
    ) -> List[int]:
        """Candidate indices, best match first."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable digest of everything that determines this strategy's
        rankings: id, seed, candidate-pool content, plus any subclass
        parameters (:meth:`_fingerprint_extra`).  Selection artifacts in
        the cache are keyed by it, so rankings are shared across grid
        configs — and across processes — exactly when the strategy and
        pool are identical.
        """
        from ..cache.keys import stable_digest

        return stable_digest(
            "selection",
            self.id,
            self.seed,
            self.candidates.fingerprint(),
            list(self._fingerprint_extra()),
        )

    def _fingerprint_extra(self) -> Sequence[object]:
        """Subclass hook: extra parameters that change rankings."""
        return ()

    def select(
        self,
        question: str,
        db_id: str,
        k: int,
        predicted_sql: Optional[str] = None,
    ) -> List[ExampleBlock]:
        """Top-``k`` examples in prompt order (most similar last)."""
        if k <= 0:
            return []
        order = self.rank(question, db_id, predicted_sql)[:k]
        blocks = []
        for index in reversed(order):
            example = self.candidates[index]
            blocks.append(
                ExampleBlock(
                    question=example.question,
                    sql=example.query,
                    schema=self.candidates.schema(example.db_id),
                )
            )
        return blocks


class RandomSelection(SelectionStrategy):
    """RD_S — seeded uniform sample, deterministic per target question."""

    id = "RD_S"
    name = "Random"

    def rank(self, question, db_id, predicted_sql=None) -> List[int]:
        rng = rng_from("random-selection", str(self.seed), db_id, question)
        order = list(range(len(self.candidates)))
        rng.shuffle(order)
        return order


class _EmbeddingSelection(SelectionStrategy):
    """Shared machinery: embed candidates once, rank targets by cosine."""

    masked: bool = False

    def __init__(self, candidates: SpiderDataset, seed: int = 0):
        super().__init__(candidates, seed)
        self._embedder = TfidfEmbedder()
        texts = [self._candidate_text(e) for e in candidates]
        self._vectors = self._embedder.fit_transform(texts)

    def _candidate_text(self, example: Example) -> str:
        if self.masked:
            return self.candidates.masked_question(example)
        return example.question

    def _target_text(self, question: str, db_id: str) -> str:
        return question

    def _similarities(self, question: str, db_id: str) -> List[float]:
        target = self._embedder.transform(self._target_text(question, db_id))
        return [cosine(target, vector) for vector in self._vectors]

    def rank(self, question, db_id, predicted_sql=None) -> List[int]:
        scores = self._similarities(question, db_id)
        return sorted(range(len(scores)), key=lambda i: (-scores[i], i))


class QuestionSimilaritySelection(_EmbeddingSelection):
    """QTS_S — nearest neighbours of the raw question."""

    id = "QTS_S"
    name = "Question Similarity"
    masked = False


class MaskedQuestionSimilaritySelection(_EmbeddingSelection):
    """MQS_S — nearest neighbours after masking domain words.

    The target question is masked with *its own* database's linker, the
    candidates with theirs — mirroring the paper's cross-domain masking.
    """

    id = "MQS_S"
    name = "Masked Question Similarity"
    masked = True

    def __init__(self, candidates: SpiderDataset, seed: int = 0):
        super().__init__(candidates, seed)
        self._target_linkers: Dict[str, object] = {}
        self._target_fingerprint = ""

    def mask_target(self, question: str, db_id: str) -> str:
        linker = self._target_linkers.get(db_id)
        if linker is None:
            # The target db is usually not in the candidate pool (Spider is
            # cross-domain); build a linker from the candidate set if it is,
            # otherwise fall back to raw text.
            if db_id in self.candidates.schemas:
                linker = self.candidates.linker(db_id)
            self._target_linkers[db_id] = linker
        if linker is None:
            return question
        return linker.mask_question(question)

    def set_target_dataset(self, dataset: SpiderDataset) -> None:
        """Provide the evaluation dataset so target questions can be masked
        with their own schemas' linkers."""
        for db_id in dataset.schemas:
            self._target_linkers[db_id] = dataset.linker(db_id)
        self._target_fingerprint = dataset.fingerprint()

    def _target_text(self, question: str, db_id: str) -> str:
        return self.mask_target(question, db_id)

    def _fingerprint_extra(self) -> Sequence[object]:
        # Target masking depends on which dataset's linkers were installed.
        return (self._target_fingerprint,)


class DailSelection(MaskedQuestionSimilaritySelection):
    """DAIL_S — masked-question similarity gated by skeleton similarity.

    Candidates whose gold-SQL skeleton is similar (≥ threshold) to the
    preliminary predicted SQL are ranked ahead of the rest; ties broken by
    masked-question similarity.  Without a predicted SQL this degrades to
    MQS_S, as in the paper's ablation.
    """

    id = "DAIL_S"
    name = "DAIL Selection"

    def __init__(
        self,
        candidates: SpiderDataset,
        seed: int = 0,
        skeleton_threshold: float = DAIL_SKELETON_THRESHOLD,
    ):
        super().__init__(candidates, seed)
        self.skeleton_threshold = skeleton_threshold

    def _fingerprint_extra(self) -> Sequence[object]:
        return (self._target_fingerprint, repr(self.skeleton_threshold))

    def rank(self, question, db_id, predicted_sql=None) -> List[int]:
        question_scores = self._similarities(question, db_id)
        if predicted_sql is None:
            return sorted(
                range(len(question_scores)),
                key=lambda i: (-question_scores[i], i),
            )
        skeleton_scores = [
            skeleton_similarity(predicted_sql, self.candidates[i].query)
            for i in range(len(self.candidates))
        ]
        passes = [s >= self.skeleton_threshold for s in skeleton_scores]
        return sorted(
            range(len(question_scores)),
            key=lambda i: (
                not passes[i],                                   # gate first
                -(0.5 * question_scores[i] + 0.5 * skeleton_scores[i]),
                i,
            ),
        )


_REGISTRY = {
    cls.id: cls
    for cls in (
        RandomSelection,
        QuestionSimilaritySelection,
        MaskedQuestionSimilaritySelection,
        DailSelection,
    )
}


def get_selection(
    sel_id: str, candidates: SpiderDataset, seed: int = 0
) -> SelectionStrategy:
    """Instantiate a selection strategy by id.

    Raises:
        PromptError: for unknown ids.
    """
    try:
        cls = _REGISTRY[sel_id]
    except KeyError as exc:
        raise PromptError(
            f"unknown selection {sel_id!r}; expected one of {sorted(_REGISTRY)}"
        ) from exc
    return cls(candidates, seed=seed)
