"""Shared utilities: deterministic randomness and text helpers."""

from .rng import rng_from, stable_choice, stable_hash, stable_shuffle, stable_unit
from .text import (
    STOPWORDS,
    char_ngrams,
    content_words,
    indent_block,
    join_nonempty,
    normalize_whitespace,
    snake_to_words,
    strip_accents,
    truncate_middle,
    word_tokenize,
)

__all__ = [
    "rng_from", "stable_choice", "stable_hash", "stable_shuffle",
    "stable_unit", "STOPWORDS", "char_ngrams", "content_words",
    "indent_block", "join_nonempty", "normalize_whitespace",
    "snake_to_words", "strip_accents", "truncate_middle", "word_tokenize",
]
