"""Small text utilities shared across the library."""

from __future__ import annotations

import re
import unicodedata
from typing import Iterable, List

_WORD_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

# A compact English stopword list; enough for question masking / similarity.
STOPWORDS = frozenset(
    """a an the of for in on at to from by with and or is are was were be been
    do does did what which who whom whose when where how why show me give list
    find return all each every per than then that this those these there it
    its their his her as into onto not no""".split()
)


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip the ends."""
    return re.sub(r"\s+", " ", text).strip()


def strip_accents(text: str) -> str:
    """Remove diacritics (``café`` → ``cafe``)."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def word_tokenize(text: str) -> List[str]:
    """Split text into lowercase word and punctuation tokens.

    ``"Show VIP users!"`` → ``["show", "vip", "users", "!"]``
    """
    return [t.lower() for t in _WORD_RE.findall(text)]


def content_words(text: str) -> List[str]:
    """Word tokens with stopwords and punctuation removed."""
    return [
        t for t in word_tokenize(text)
        if t not in STOPWORDS and any(c.isalnum() for c in t)
    ]


def snake_to_words(identifier: str) -> List[str]:
    """Split an identifier into its lowercase word parts.

    Handles both ``snake_case`` and ``camelCase``:
    ``"pet_age"`` → ``["pet", "age"]``; ``"petAge"`` → ``["pet", "age"]``.
    """
    spaced = _CAMEL_RE.sub(" ", identifier).replace("_", " ")
    return [w.lower() for w in spaced.split() if w]


def char_ngrams(text: str, n: int = 3) -> List[str]:
    """Character n-grams of a padded lowercase string."""
    if not text:
        return []
    padded = f"#{text.lower()}#"
    if len(padded) < n:
        return [padded]
    return [padded[i:i + n] for i in range(len(padded) - n + 1)]


def truncate_middle(text: str, max_len: int, marker: str = " ... ") -> str:
    """Shorten ``text`` to ``max_len`` characters by removing the middle."""
    if len(text) <= max_len:
        return text
    if max_len <= len(marker):
        return text[:max_len]
    keep = max_len - len(marker)
    head = keep - keep // 2
    tail = keep // 2
    return text[:head] + marker + (text[-tail:] if tail else "")


def indent_block(text: str, prefix: str = "    ") -> str:
    """Prefix every non-empty line of ``text`` with ``prefix``."""
    return "\n".join(prefix + line if line else line for line in text.splitlines())


def join_nonempty(parts: Iterable[str], sep: str = "\n") -> str:
    """Join the truthy elements of ``parts`` with ``sep``."""
    return sep.join(p for p in parts if p)
