"""Deterministic randomness helpers.

All stochastic behaviour in the library flows through these helpers so that a
run is reproducible bit-for-bit given its seeds.  The simulated LLM derives a
random stream from a *content hash* of (model id, prompt text), which makes
generation deterministic yet sensitive to every character of the prompt —
exactly the property the benchmark needs (changing the representation, the
selected examples, or even a pound sign changes the stream).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


def stable_hash(*parts: str) -> int:
    """Return a 64-bit integer hash of the given string parts.

    Unlike :func:`hash`, this is stable across processes and Python versions
    (``PYTHONHASHSEED`` does not affect it).
    """
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rng_from(*parts: str) -> random.Random:
    """Build a :class:`random.Random` seeded from a stable content hash."""
    return random.Random(stable_hash(*parts))


def stable_unit(*parts: str) -> float:
    """Deterministically map string parts to a float in ``[0, 1)``."""
    return stable_hash(*parts) / 2**64


def stable_choice(items: list, *parts: str):
    """Deterministically choose one element of ``items`` from a content hash.

    Raises:
        IndexError: if ``items`` is empty.
    """
    if not items:
        raise IndexError("stable_choice on empty sequence")
    return items[stable_hash(*parts) % len(items)]


def stable_shuffle(items: Iterable, *parts: str) -> list:
    """Return a deterministically shuffled copy of ``items``."""
    out = list(items)
    rng_from(*parts).shuffle(out)
    return out
